package datalog

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Database is a set of ground facts grouped by predicate.
type Database struct {
	rels  map[string]*relation
	bytes int64 // running estimate of heap bytes held, see tupleBytes
}

type relation struct {
	facts []Tuple
	index map[string]int // tuple key -> position in facts
	// byFirst indexes fact positions by the key of their first argument,
	// accelerating the most common join pattern (bound first argument).
	byFirst map[string][]int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*relation)}
}

// Add inserts a fact; duplicates are ignored.
func (db *Database) Add(pred string, args ...Val) {
	db.addTuple(pred, Tuple(args))
}

func (db *Database) addTuple(pred string, t Tuple) bool {
	r, ok := db.rels[pred]
	if !ok {
		r = &relation{index: make(map[string]int), byFirst: make(map[string][]int)}
		db.rels[pred] = r
	}
	k := t.Key()
	if _, dup := r.index[k]; dup {
		return false
	}
	r.index[k] = len(r.facts)
	if len(t) > 0 {
		fk := t[0].Key()
		r.byFirst[fk] = append(r.byFirst[fk], len(r.facts))
	}
	r.facts = append(r.facts, t)
	db.bytes += tupleBytes(t) + int64(2*len(k)) + 2*mapEntryOverhead
	return true
}

// Rough per-entry cost of the index and byFirst maps (bucket slot,
// position int, slice header amortization).
const mapEntryOverhead = 48

// tupleBytes estimates the heap footprint of one stored tuple: slice
// header plus, per value, the Val struct and any string or nested list
// payload. Deliberately an estimate — the point is to bound runaway
// chases in bytes, not to mirror the allocator.
func tupleBytes(t Tuple) int64 {
	n := int64(24) // tuple slice header
	for _, v := range t {
		n += valBytes(v)
	}
	return n
}

func valBytes(v Val) int64 {
	n := int64(48) // Val struct: kind, float, id, string header, slice header
	n += int64(len(v.s))
	for _, e := range v.l {
		n += valBytes(e)
	}
	return n
}

// EstimatedBytes reports the database's running heap-size estimate,
// maintained incrementally by fact insertion. Governed evaluations
// charge the growth of this figure against their memory budget every
// fixpoint round.
func (db *Database) EstimatedBytes() int64 { return db.bytes }

// Facts returns the facts of a predicate, sorted.
func (db *Database) Facts(pred string) []Tuple {
	r := db.rels[pred]
	if r == nil {
		return nil
	}
	out := append([]Tuple(nil), r.facts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return out
}

// Has reports whether the fact is present.
func (db *Database) Has(pred string, args ...Val) bool {
	r := db.rels[pred]
	if r == nil {
		return false
	}
	_, ok := r.index[Tuple(args).Key()]
	return ok
}

// Len returns the total number of facts.
func (db *Database) Len() int {
	n := 0
	for _, r := range db.rels {
		n += len(r.facts)
	}
	return n
}

// Predicates returns the sorted predicate names with at least one fact.
func (db *Database) Predicates() []string {
	var out []string
	for p, r := range db.rels {
		if len(r.facts) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func (db *Database) clone() *Database {
	c := NewDatabase()
	for p, r := range db.rels {
		nr := &relation{
			facts:   make([]Tuple, len(r.facts)),
			index:   make(map[string]int, len(r.index)),
			byFirst: make(map[string][]int, len(r.byFirst)),
		}
		copy(nr.facts, r.facts)
		for k, v := range r.index {
			nr.index[k] = v
		}
		for k, v := range r.byFirst {
			nr.byFirst[k] = append([]int(nil), v...)
		}
		c.rels[p] = nr
	}
	c.bytes = db.bytes
	return c
}

// maxNullID returns the largest labelled-null id appearing in the database.
func (db *Database) maxNullID() uint64 {
	var maxID uint64
	var scan func(v Val)
	scan = func(v Val) {
		switch v.k {
		case KNull:
			if v.id > maxID {
				maxID = v.id
			}
		case KList:
			for _, e := range v.l {
				scan(e)
			}
		}
	}
	for _, r := range db.rels {
		for _, t := range r.facts {
			for _, v := range t {
				scan(v)
			}
		}
	}
	return maxID
}

// Violation reports an EGD demanding equality of two distinct constants — in
// Vada-SA these are surfaced for human-in-the-loop inspection rather than
// failing the chase.
type Violation struct {
	Rule string
	A, B Val
}

func (v Violation) String() string {
	return fmt.Sprintf("EGD violation: %s requires %s = %s", v.Rule, v.A, v.B)
}

// Options bound a reasoning run. Zero values select the defaults.
type Options struct {
	MaxFacts  int // abort when the database exceeds this many facts (default 1e6)
	MaxRounds int // abort a stratum fixpoint after this many rounds (default 1e5)
	// MaxWork caps the total number of fact-match attempts across the
	// whole run (default 1e9): the guard against join explosions that
	// burn CPU inside a single evaluation pass, where the per-round fact
	// and round caps never trigger.
	MaxWork int64
	// Trace, when set, receives one line per stratum fixpoint round with
	// the number of facts derived — the operational visibility a
	// production reasoner needs.
	Trace io.Writer
	// Governor, when set, is charged the growth of the database's
	// estimated byte size at every fixpoint-round boundary and refunded
	// when the run ends. A failed reservation aborts the run with the
	// governor's error, so a labelled-null-heavy chase trips a byte
	// budget long before the fact-count cap would. Declared locally so
	// this package needs no dependency on the governor implementation;
	// *govern.Governor satisfies it.
	Governor Governor
}

// Governor is the engine-facing slice of a resource governor: reserve
// estimated bytes before growing, release them when done.
type Governor interface {
	ReserveBytes(n int64) error
	ReleaseBytes(n int64)
}

func (o *Options) withDefaults() Options {
	out := Options{MaxFacts: 1_000_000, MaxRounds: 100_000, MaxWork: 1_000_000_000}
	if o != nil {
		if o.MaxFacts > 0 {
			out.MaxFacts = o.MaxFacts
		}
		if o.MaxRounds > 0 {
			out.MaxRounds = o.MaxRounds
		}
		if o.MaxWork > 0 {
			out.MaxWork = o.MaxWork
		}
		out.Trace = o.Trace
		out.Governor = o.Governor
	}
	return out
}

// Result is the outcome of a reasoning run: the derived database (input facts
// included) plus any EGD violations encountered.
type Result struct {
	db         *Database
	prov       map[string]derivation
	rules      []Rule
	Violations []Violation
}

// Facts returns the derived facts of a predicate, sorted.
func (r *Result) Facts(pred string) []Tuple { return r.db.Facts(pred) }

// Has reports whether a fact was derived (or given).
func (r *Result) Has(pred string, args ...Val) bool { return r.db.Has(pred, args...) }

// DB exposes the derived database.
func (r *Result) DB() *Database { return r.db }

type factRef struct {
	pred string
	t    Tuple
}

func (f factRef) key() string { return f.pred + "/" + f.t.Key() }

func (f factRef) String() string { return f.pred + f.t.String() }

type derivation struct {
	rule int // index into rules; -1 for extensional facts
	body []factRef
}

// evaluator carries the mutable state of one reasoning run.
type evaluator struct {
	ctx      context.Context
	prog     *Program
	opt      Options
	db       *Database
	prov     map[string]derivation
	strata   map[string]int
	nStrata  int
	nullCtr  uint64
	skolem   map[string]Val // rule/var/frontier -> invented null
	orders   [][]int        // literal evaluation order per rule
	work     int64          // fact-match attempts so far (vs opt.MaxWork)
	charged  int64          // db bytes already reserved with opt.Governor
	aggState []map[string]*aggGroup
	subst    map[uint64]Val // labelled-null unification from EGDs
}

// chargeMemory reserves the growth of the database's estimated size
// since the last charge. The figure only ratchets up during a run;
// everything is released in one step when the run returns.
func (ev *evaluator) chargeMemory() error {
	if ev.opt.Governor == nil {
		return nil
	}
	b := ev.db.EstimatedBytes()
	if b <= ev.charged {
		return nil
	}
	//governcharge:ok incremental charge; RunContext defers ReleaseBytes(ev.charged) for the whole run
	if err := ev.opt.Governor.ReserveBytes(b - ev.charged); err != nil {
		return fmt.Errorf("datalog: database estimated at %d bytes: %w", b, err)
	}
	ev.charged = b
	return nil
}

type aggGroup struct {
	env     map[string]Val // representative binding of the group variables
	used    []factRef
	contrib map[string]Val // contributor key -> best contribution
	emitted bool           // for LAggCond: head already produced
	dirty   bool           // contribution changed since the last flush
}

// Run evaluates the program over the extensional database and returns the
// derived database. The input database is not modified.
func Run(p *Program, edb *Database, opt *Options) (*Result, error) {
	return RunContext(context.Background(), p, edb, opt)
}

// RunContext is Run with cancellation support: the evaluator polls ctx at
// every fixpoint-round boundary and every few thousand fact-match attempts,
// so a cancelled or expired context stops a runaway chase promptly instead
// of burning CPU until the MaxWork budget trips. The returned error wraps
// ctx.Err(), so callers can errors.Is against context.Canceled and
// context.DeadlineExceeded.
func RunContext(ctx context.Context, p *Program, edb *Database, opt *Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	strata, n, err := stratify(p)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{
		ctx:     ctx,
		prog:    p,
		opt:     opt.withDefaults(),
		db:      edb.clone(),
		prov:    make(map[string]derivation),
		strata:  strata,
		nStrata: n,
		nullCtr: edb.maxNullID(),
		skolem:  make(map[string]Val),
		subst:   make(map[uint64]Val),
	}
	if ev.opt.Governor != nil {
		defer func() { ev.opt.Governor.ReleaseBytes(ev.charged) }()
	}
	if err := ev.chargeMemory(); err != nil { // the cloned input database
		return nil, err
	}
	ev.orders = make([][]int, len(p.Rules))
	for i := range p.Rules {
		ord, err := literalOrder(&p.Rules[i])
		if err != nil {
			return nil, err
		}
		ev.orders[i] = ord
	}

	// Facts (empty-body rules) are extensional.
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.IsEGD || len(r.Body) > 0 {
			continue
		}
		for _, h := range r.Heads {
			t := make(Tuple, len(h.Args))
			for j, a := range h.Args {
				t[j] = a.Val
			}
			ev.db.addTuple(h.Pred, t)
		}
	}

	var violations []Violation
	seenViol := make(map[string]bool)
	for pass := 0; ; pass++ {
		if pass > ev.opt.MaxRounds {
			return nil, fmt.Errorf("datalog: EGD unification did not converge")
		}
		if err := ev.ctxErr(); err != nil {
			return nil, err
		}
		if err := ev.runStrata(); err != nil {
			return nil, err
		}
		unified, viols, err := ev.runEGDs()
		if err != nil {
			return nil, err
		}
		for _, v := range viols {
			k := v.Rule + "|" + v.A.Key() + "|" + v.B.Key()
			if !seenViol[k] {
				seenViol[k] = true
				violations = append(violations, v)
			}
		}
		if !unified {
			break
		}
		ev.applySubst()
	}
	return &Result{db: ev.db, prov: ev.prov, rules: p.Rules, Violations: violations}, nil
}

// literalOrder picks an evaluation order for a rule body: at each step the
// first literal whose requirements are met — positive atoms any time,
// everything else once its variables are bound. Aggregates go last.
func literalOrder(r *Rule) ([]int, error) {
	if len(r.Body) == 0 {
		return nil, nil
	}
	bound := make(map[string]bool)
	done := make([]bool, len(r.Body))
	var order []int
	aggIdx := -1
	for i, l := range r.Body {
		if l.Kind == LAggAssign || l.Kind == LAggCond {
			aggIdx = i
			done[i] = true
		}
	}
	exprReady := func(e Expr) bool {
		if e == nil {
			return true
		}
		set := make(map[string]bool)
		e.vars(set)
		for v := range set {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	for len(order) < len(r.Body)-btoi(aggIdx >= 0) {
		picked := -1
		for i, l := range r.Body {
			if done[i] {
				continue
			}
			ready := false
			switch l.Kind {
			case LAtom:
				ready = true
			case LNegAtom:
				ready = true
				for _, t := range l.Atom.Args {
					if t.Kind == TVar && !bound[t.Name] {
						ready = false
						break
					}
				}
			case LCmp:
				ready = exprReady(l.L) && exprReady(l.R)
			case LAssign:
				ready = exprReady(l.AssignE)
			}
			if ready {
				picked = i
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("datalog: line %d: cannot order body literals of rule %s",
				r.Line, r.String())
		}
		done[picked] = true
		order = append(order, picked)
		switch l := r.Body[picked]; l.Kind {
		case LAtom:
			for _, t := range l.Atom.Args {
				if t.Kind == TVar {
					bound[t.Name] = true
				}
			}
		case LAssign:
			bound[l.Var] = true
		}
	}
	if aggIdx >= 0 {
		order = append(order, aggIdx)
	}
	return order, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runStrata evaluates all strata bottom-up to fixpoint.
func (ev *evaluator) runStrata() error {
	// Group rule indexes by stratum (stratum of the rule's head preds;
	// the stratifier forces all heads of one rule into one stratum).
	ruleStratum := make([]int, len(ev.prog.Rules))
	ev.aggState = make([]map[string]*aggGroup, len(ev.prog.Rules))
	for i := range ev.prog.Rules {
		r := &ev.prog.Rules[i]
		if r.IsEGD || len(r.Body) == 0 {
			ruleStratum[i] = -1
			continue
		}
		ruleStratum[i] = ev.strata[r.Heads[0].Pred]
		ev.aggState[i] = make(map[string]*aggGroup)
	}
	for s := 0; s < ev.nStrata; s++ {
		var rules []int
		for i, rs := range ruleStratum {
			if rs == s {
				rules = append(rules, i)
			}
		}
		if len(rules) == 0 {
			continue
		}
		if err := ev.fixpoint(s, rules); err != nil {
			return err
		}
	}
	return nil
}

// fixpoint saturates one stratum with semi-naive evaluation. Rules with
// aggregates are re-evaluated in full each round: their per-group contributor
// state makes repeated evaluation idempotent and monotone.
func (ev *evaluator) fixpoint(stratum int, rules []int) error {
	delta := make(map[string][]Tuple)
	collect := func(added []factRef) {
		for _, f := range added {
			delta[f.pred] = append(delta[f.pred], f.t)
		}
	}

	// Seed round: full evaluation of every rule.
	var added []factRef
	for _, ri := range rules {
		a, err := ev.evalRule(ri, -1, nil)
		if err != nil {
			return err
		}
		added = append(added, a...)
	}
	collect(added)
	if ev.opt.Trace != nil {
		fmt.Fprintf(ev.opt.Trace, "stratum %d seed: %d rules, %d facts derived, db %d\n",
			stratum, len(rules), len(added), ev.db.Len())
	}
	if err := ev.chargeMemory(); err != nil {
		return err
	}

	for round := 0; len(delta) > 0; round++ {
		if round > ev.opt.MaxRounds {
			return fmt.Errorf("datalog: stratum %d exceeded %d rounds", stratum, ev.opt.MaxRounds)
		}
		if err := ev.ctxErr(); err != nil {
			return err
		}
		if ev.db.Len() > ev.opt.MaxFacts {
			return fmt.Errorf("datalog: database exceeded %d facts (runaway chase?)", ev.opt.MaxFacts)
		}
		if err := ev.chargeMemory(); err != nil {
			return err
		}
		next := make(map[string][]Tuple)
		for _, ri := range rules {
			r := &ev.prog.Rules[ri]
			// Semi-naive: one pass per recursive body-atom occurrence,
			// with that occurrence restricted to the last delta. This is
			// sound for aggregate-condition rules too: their per-group
			// contributor state persists across rounds and accumulates
			// monotonically, and any genuinely new binding must involve
			// at least one delta fact.
			for li, l := range r.Body {
				if l.Kind != LAtom {
					continue
				}
				if ev.strata[l.Atom.Pred] != stratum {
					continue
				}
				d := delta[l.Atom.Pred]
				if len(d) == 0 {
					continue
				}
				a, err := ev.evalRule(ri, li, d)
				if err != nil {
					return err
				}
				for _, f := range a {
					next[f.pred] = append(next[f.pred], f.t)
				}
			}
		}
		if ev.opt.Trace != nil {
			derived := 0
			for _, fs := range next {
				derived += len(fs)
			}
			fmt.Fprintf(ev.opt.Trace, "stratum %d round %d: %d facts derived, db %d\n",
				stratum, round+1, derived, ev.db.Len())
		}
		delta = next
	}
	return nil
}

// evalRule evaluates one rule. If restrict >= 0, the positive body atom at
// that literal index only matches tuples from restrictTo. It returns the
// newly derived facts.
func (ev *evaluator) evalRule(ri, restrict int, restrictTo []Tuple) ([]factRef, error) {
	r := &ev.prog.Rules[ri]
	var out []factRef
	env := make(map[string]Val)
	var used []factRef
	var evalErr error

	var emit func()
	aggLit := -1
	for i, l := range r.Body {
		if l.Kind == LAggAssign || l.Kind == LAggCond {
			aggLit = i
		}
	}

	if aggLit == -1 {
		emit = func() {
			refs, err := ev.emitHeads(ri, env, used)
			if err != nil {
				evalErr = err
				return
			}
			out = append(out, refs...)
		}
	} else {
		emit = func() {
			if err := ev.recordAgg(ri, aggLit, env, used); err != nil {
				evalErr = err
			}
		}
	}

	order := ev.orders[ri]
	var walk func(step int)
	walk = func(step int) {
		if evalErr != nil {
			return
		}
		if step == len(order) || (aggLit >= 0 && order[step] == aggLit) {
			emit()
			return
		}
		l := &r.Body[order[step]]
		switch l.Kind {
		case LAtom:
			if order[step] == restrict {
				for _, f := range restrictTo {
					if err := ev.spend(); err != nil {
						evalErr = err
						return
					}
					undo, ok := match(l.Atom, f, env)
					if !ok {
						continue
					}
					used = append(used, factRef{l.Atom.Pred, f})
					walk(step + 1)
					used = used[:len(used)-1]
					undoBind(env, undo)
					if evalErr != nil {
						return
					}
				}
				return
			}
			rel := ev.db.rels[l.Atom.Pred]
			if rel == nil {
				return
			}
			// Bound first argument: walk only the matching bucket. The
			// bucket slice may grow while we iterate (rules can derive
			// into the relation they read); indexing by position keeps
			// newly added facts visible, as the full scan would.
			if len(l.Atom.Args) > 0 {
				if fv, ok := boundTermVal(l.Atom.Args[0], env); ok {
					bucket := rel.byFirst[fv.Key()]
					for bi := 0; bi < len(bucket); bi++ {
						if err := ev.spend(); err != nil {
							evalErr = err
							return
						}
						f := rel.facts[bucket[bi]]
						undo, ok := match(l.Atom, f, env)
						if !ok {
							continue
						}
						used = append(used, factRef{l.Atom.Pred, f})
						walk(step + 1)
						used = used[:len(used)-1]
						undoBind(env, undo)
						if evalErr != nil {
							return
						}
						bucket = rel.byFirst[fv.Key()]
					}
					return
				}
			}
			for fi := 0; fi < len(rel.facts); fi++ {
				if err := ev.spend(); err != nil {
					evalErr = err
					return
				}
				f := rel.facts[fi]
				undo, ok := match(l.Atom, f, env)
				if !ok {
					continue
				}
				used = append(used, factRef{l.Atom.Pred, f})
				walk(step + 1)
				used = used[:len(used)-1]
				undoBind(env, undo)
				if evalErr != nil {
					return
				}
			}
		case LNegAtom:
			t := make(Tuple, len(l.Atom.Args))
			for i, a := range l.Atom.Args {
				v, err := termVal(a, env)
				if err != nil {
					evalErr = err
					return
				}
				t[i] = v
			}
			if !ev.db.Has(l.Atom.Pred, t...) {
				walk(step + 1)
			}
		case LCmp:
			lv, err := evalExpr(l.L, env)
			if err != nil {
				evalErr = err
				return
			}
			rv, err := evalExpr(l.R, env)
			if err != nil {
				evalErr = err
				return
			}
			ok, err := compare(l.Op, lv, rv)
			if err != nil {
				evalErr = fmt.Errorf("line %d: %w", r.Line, err)
				return
			}
			if ok {
				walk(step + 1)
			}
		case LAssign:
			v, err := evalExpr(l.AssignE, env)
			if err != nil {
				evalErr = err
				return
			}
			if old, bound := env[l.Var]; bound {
				if Equal(old, v) {
					walk(step + 1)
				}
				return
			}
			env[l.Var] = v
			walk(step + 1)
			delete(env, l.Var)
		}
	}
	walk(0)
	if evalErr != nil {
		return nil, evalErr
	}

	if aggLit >= 0 {
		refs, err := ev.flushAgg(ri, aggLit)
		if err != nil {
			return nil, err
		}
		out = append(out, refs...)
	}
	return out, nil
}

// ctxPollMask throttles cancellation polling inside the innermost join
// loops: the context is checked every 8192 fact-match attempts, cheap enough
// to be invisible next to the matching work while still bounding the latency
// between cancellation and the evaluator unwinding.
const ctxPollMask = 8192 - 1

// spend consumes one unit of the work budget; it returns a non-nil error
// when the budget is exhausted or the run's context is done.
func (ev *evaluator) spend() error {
	ev.work++
	if ev.work > ev.opt.MaxWork {
		return fmt.Errorf("datalog: exceeded the work budget of %d match attempts (join explosion?)", ev.opt.MaxWork)
	}
	if ev.work&ctxPollMask == 0 {
		return ev.ctxErr()
	}
	return nil
}

// ctxErr reports a cancelled or expired run context, wrapping ctx.Err() so
// errors.Is sees context.Canceled / context.DeadlineExceeded.
func (ev *evaluator) ctxErr() error {
	if err := ev.ctx.Err(); err != nil {
		return fmt.Errorf("datalog: evaluation cancelled after %d match attempts: %w", ev.work, err)
	}
	return nil
}

func (ev *evaluator) factsFor(pred string) []Tuple {
	r := ev.db.rels[pred]
	if r == nil {
		return nil
	}
	return r.facts
}

// match unifies an atom pattern against a fact under env, returning the list
// of variables newly bound (to undo) and whether it matched.
func match(a *Atom, f Tuple, env map[string]Val) ([]string, bool) {
	if len(a.Args) != len(f) {
		return nil, false
	}
	var undo []string
	for i, t := range a.Args {
		switch t.Kind {
		case TConst:
			if !Equal(t.Val, f[i]) {
				undoBind(env, undo)
				return nil, false
			}
		case TVar:
			if v, ok := env[t.Name]; ok {
				if !Equal(v, f[i]) {
					undoBind(env, undo)
					return nil, false
				}
			} else {
				env[t.Name] = f[i]
				undo = append(undo, t.Name)
			}
		}
	}
	return undo, true
}

func undoBind(env map[string]Val, undo []string) {
	for _, v := range undo {
		delete(env, v)
	}
}

// boundTermVal resolves a term if it is a constant or an already-bound
// variable.
func boundTermVal(t Term, env map[string]Val) (Val, bool) {
	if t.Kind == TConst {
		return t.Val, true
	}
	v, ok := env[t.Name]
	return v, ok
}

func termVal(t Term, env map[string]Val) (Val, error) {
	if t.Kind == TConst {
		return t.Val, nil
	}
	v, ok := env[t.Name]
	if !ok {
		return Val{}, fmt.Errorf("datalog: unbound variable %s", t.Name)
	}
	return v, nil
}

func evalExpr(e Expr, env map[string]Val) (Val, error) {
	switch x := e.(type) {
	case ExprTerm:
		return termVal(x.T, env)
	case ExprNeg:
		v, err := evalExpr(x.E, env)
		if err != nil {
			return Val{}, err
		}
		if v.k != KNum {
			return Val{}, fmt.Errorf("datalog: unary '-' on non-number %s", v)
		}
		return Num(-v.n), nil
	case ExprCall:
		spec, ok := builtins[x.Name]
		if !ok {
			return Val{}, fmt.Errorf("datalog: unknown function %q", x.Name)
		}
		args := make([]Val, len(x.Args))
		for i, a := range x.Args {
			v, err := evalExpr(a, env)
			if err != nil {
				return Val{}, err
			}
			args[i] = v
		}
		return spec.apply(args)
	case ExprBin:
		l, err := evalExpr(x.L, env)
		if err != nil {
			return Val{}, err
		}
		r, err := evalExpr(x.R, env)
		if err != nil {
			return Val{}, err
		}
		if l.k != KNum || r.k != KNum {
			return Val{}, fmt.Errorf("datalog: arithmetic %q on non-numbers %s, %s", x.Op, l, r)
		}
		switch x.Op {
		case "+":
			return Num(l.n + r.n), nil
		case "-":
			return Num(l.n - r.n), nil
		case "*":
			return Num(l.n * r.n), nil
		case "/":
			if r.n == 0 {
				return Val{}, fmt.Errorf("datalog: division by zero")
			}
			return Num(l.n / r.n), nil
		}
	}
	return Val{}, fmt.Errorf("datalog: bad expression %v", e)
}

func compare(op string, l, r Val) (bool, error) {
	switch op {
	case OpEq:
		return Equal(l, r), nil
	case OpNe:
		return !Equal(l, r), nil
	case OpIn:
		return Contains(r, l), nil
	}
	if l.k == KList || r.k == KList {
		return false, fmt.Errorf("ordered comparison %q on list value", op)
	}
	c := Compare(l, r)
	switch op {
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("unknown comparison %q", op)
}

// emitHeads instantiates the rule heads under env, inventing labelled nulls
// for existential variables, and records provenance for new facts.
func (ev *evaluator) emitHeads(ri int, env map[string]Val, used []factRef) ([]factRef, error) {
	r := &ev.prog.Rules[ri]
	var cleanup []string
	if len(r.Existential) > 0 {
		// Skolem key: rule id + frontier (bound head variables).
		var b strings.Builder
		fmt.Fprintf(&b, "r%d|", ri)
		var frontier []string
		for _, h := range r.Heads {
			for _, t := range h.Args {
				if t.Kind == TVar {
					if _, ok := env[t.Name]; ok {
						frontier = append(frontier, t.Name)
					}
				}
			}
		}
		sort.Strings(frontier)
		for _, v := range frontier {
			b.WriteString(v)
			b.WriteByte('=')
			b.WriteString(env[v].Key())
			b.WriteByte(';')
		}
		base := b.String()
		for _, x := range r.Existential {
			key := base + "!" + x
			null, ok := ev.skolem[key]
			if !ok {
				ev.nullCtr++
				null = NullVal(ev.nullCtr)
				ev.skolem[key] = null
			}
			// A previously minted null may have been unified away by an
			// EGD; emit its resolved value so re-derivations after
			// unification converge instead of resurrecting the old null.
			env[x] = ev.resolve(null)
			cleanup = append(cleanup, x)
		}
	}
	defer undoBind(env, cleanup)

	var out []factRef
	usedCopy := append([]factRef(nil), used...)
	for _, h := range r.Heads {
		t := make(Tuple, len(h.Args))
		for i, a := range h.Args {
			v, err := termVal(a, env)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", r.Line, err)
			}
			t[i] = v
		}
		if ev.db.addTuple(h.Pred, t) {
			ref := factRef{h.Pred, t}
			ev.prov[ref.key()] = derivation{rule: ri, body: usedCopy}
			out = append(out, ref)
		}
	}
	return out, nil
}

// recordAgg folds one body binding into the rule's aggregate state.
func (ev *evaluator) recordAgg(ri, aggLit int, env map[string]Val, used []factRef) error {
	r := &ev.prog.Rules[ri]
	l := &r.Body[aggLit]

	// Group key: head variables bound by the body (excludes the aggregate
	// result variable and existential variables).
	groupVars := ev.groupVars(r, l)
	var b strings.Builder
	genv := make(map[string]Val, len(groupVars))
	for _, v := range groupVars {
		val, ok := env[v]
		if !ok {
			return fmt.Errorf("datalog: line %d: head variable %s unbound at aggregate", r.Line, v)
		}
		genv[v] = val
		b.WriteString(val.Key())
		b.WriteByte('|')
	}
	gkey := b.String()

	st := ev.aggState[ri]
	g, ok := st[gkey]
	if !ok {
		g = &aggGroup{env: genv, used: append([]factRef(nil), used...), contrib: make(map[string]Val)}
		st[gkey] = g
	}

	cv, err := evalExpr(l.Agg.Contrib, env)
	if err != nil {
		return err
	}
	var contribution Val
	switch l.Agg.Fn {
	case AggCount:
		contribution = Num(1)
	case AggUnion:
		v, err := evalExpr(l.Agg.Arg, env)
		if err != nil {
			return err
		}
		contribution = v
	default:
		v, err := evalExpr(l.Agg.Arg, env)
		if err != nil {
			return err
		}
		if v.k != KNum {
			return fmt.Errorf("datalog: line %d: %s over non-number %s", r.Line, l.Agg.Fn, v)
		}
		contribution = v
	}

	ck := cv.Key()
	if old, ok := g.contrib[ck]; ok {
		// Monotonic contributor semantics: a later version of the same
		// contributor replaces the earlier one; we keep the maximal
		// contribution so the aggregate never regresses.
		if l.Agg.Fn == AggUnion {
			merged := List(append(old.Elems(), contribution)...)
			if !Equal(merged, old) {
				g.contrib[ck] = merged
				g.dirty = true
			}
		} else if Compare(contribution, old) > 0 {
			g.contrib[ck] = contribution
			g.dirty = true
		}
	} else {
		if l.Agg.Fn == AggUnion {
			contribution = List(contribution)
		}
		g.contrib[ck] = contribution
		g.dirty = true
	}
	return nil
}

// groupVars lists, in deterministic order, the head variables that form the
// aggregation group of rule r.
func (ev *evaluator) groupVars(r *Rule, l *Literal) []string {
	skip := map[string]bool{}
	if l.Kind == LAggAssign {
		skip[l.Var] = true
	}
	for _, x := range r.Existential {
		skip[x] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, h := range r.Heads {
		for _, t := range h.Args {
			if t.Kind == TVar && !skip[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// flushAgg computes aggregate values per group and emits head facts.
func (ev *evaluator) flushAgg(ri, aggLit int) ([]factRef, error) {
	r := &ev.prog.Rules[ri]
	l := &r.Body[aggLit]
	var out []factRef

	// Only groups whose contributions changed since the last flush can
	// produce new heads; skipping the rest keeps long fixpoints linear in
	// the work actually done.
	gkeys := make([]string, 0, len(ev.aggState[ri]))
	for k, g := range ev.aggState[ri] {
		if g.dirty {
			gkeys = append(gkeys, k)
		}
	}
	sort.Strings(gkeys)

	for _, gk := range gkeys {
		g := ev.aggState[ri][gk]
		g.dirty = false
		agg, err := foldAgg(l.Agg.Fn, g.contrib)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", r.Line, err)
		}
		env := make(map[string]Val, len(g.env)+1)
		for k, v := range g.env {
			env[k] = v
		}
		switch l.Kind {
		case LAggAssign:
			env[l.Var] = agg
		case LAggCond:
			rhs, err := evalExpr(l.R, env)
			if err != nil {
				return nil, err
			}
			ok, err := compare(l.Op, agg, rhs)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", r.Line, err)
			}
			if !ok || g.emitted {
				continue
			}
			g.emitted = true
		}
		refs, err := ev.emitHeads(ri, env, g.used)
		if err != nil {
			return nil, err
		}
		out = append(out, refs...)
	}
	return out, nil
}

func foldAgg(fn AggFn, contrib map[string]Val) (Val, error) {
	keys := make([]string, 0, len(contrib))
	for k := range contrib {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	switch fn {
	case AggCount:
		return Num(float64(len(contrib))), nil
	case AggSum:
		s := 0.0
		for _, k := range keys {
			s += contrib[k].NumVal()
		}
		return Num(s), nil
	case AggProd:
		p := 1.0
		for _, k := range keys {
			p *= contrib[k].NumVal()
		}
		return Num(p), nil
	case AggUnion:
		var all []Val
		for _, k := range keys {
			all = append(all, contrib[k].Elems()...)
		}
		return List(all...), nil
	}
	return Val{}, fmt.Errorf("unknown aggregate %s", fn)
}

// runEGDs evaluates equality-generating dependencies over the saturated
// database. Null-constant and null-null pairs are unified; constant-constant
// conflicts are reported as violations.
func (ev *evaluator) runEGDs() (unified bool, viols []Violation, err error) {
	for ri := range ev.prog.Rules {
		r := &ev.prog.Rules[ri]
		if !r.IsEGD {
			continue
		}
		if err := ev.ctxErr(); err != nil {
			return false, nil, err
		}
		env := make(map[string]Val)
		var evalErr error
		order := ev.orders[ri]
		var walk func(step int)
		walk = func(step int) {
			if evalErr != nil {
				return
			}
			if step == len(order) {
				l, errL := termVal(r.EGDL, env)
				if errL != nil {
					evalErr = errL
					return
				}
				rv, errR := termVal(r.EGDR, env)
				if errR != nil {
					evalErr = errR
					return
				}
				l, rv = ev.resolve(l), ev.resolve(rv)
				if Equal(l, rv) {
					return
				}
				switch {
				case l.k == KNull:
					ev.subst[l.id] = rv
					unified = true
				case rv.k == KNull:
					ev.subst[rv.id] = l
					unified = true
				default:
					viols = append(viols, Violation{Rule: r.String(), A: l, B: rv})
				}
				return
			}
			lit := &r.Body[order[step]]
			switch lit.Kind {
			case LAtom:
				for _, f := range ev.factsFor(lit.Atom.Pred) {
					undo, ok := match(lit.Atom, f, env)
					if !ok {
						continue
					}
					walk(step + 1)
					undoBind(env, undo)
					if evalErr != nil {
						return
					}
				}
			case LNegAtom:
				t := make(Tuple, len(lit.Atom.Args))
				for i, a := range lit.Atom.Args {
					v, err := termVal(a, env)
					if err != nil {
						evalErr = err
						return
					}
					t[i] = v
				}
				if !ev.db.Has(lit.Atom.Pred, t...) {
					walk(step + 1)
				}
			case LCmp:
				lv, errL := evalExpr(lit.L, env)
				if errL != nil {
					evalErr = errL
					return
				}
				rv, errR := evalExpr(lit.R, env)
				if errR != nil {
					evalErr = errR
					return
				}
				ok, errC := compare(lit.Op, lv, rv)
				if errC != nil {
					evalErr = errC
					return
				}
				if ok {
					walk(step + 1)
				}
			case LAssign:
				v, errA := evalExpr(lit.AssignE, env)
				if errA != nil {
					evalErr = errA
					return
				}
				env[lit.Var] = v
				walk(step + 1)
				delete(env, lit.Var)
			default:
				evalErr = fmt.Errorf("datalog: aggregates are not allowed in EGD bodies")
			}
		}
		walk(0)
		if evalErr != nil {
			return false, nil, evalErr
		}
	}
	return unified, viols, nil
}

// resolve chases the null-substitution map.
func (ev *evaluator) resolve(v Val) Val {
	for i := 0; v.k == KNull; i++ {
		next, ok := ev.subst[v.id]
		if !ok {
			return v
		}
		v = next
		if i > len(ev.subst) {
			// Cycle guard; cycles cannot arise because we always map a
			// null to a value resolved first, but stay safe.
			return v
		}
	}
	if v.k == KList {
		elems := make([]Val, len(v.l))
		for i, e := range v.l {
			elems[i] = ev.resolve(e)
		}
		return List(elems...)
	}
	return v
}

// applySubst rewrites the whole database (and provenance keys) under the
// null substitution, then clears per-run derived state so strata re-run.
func (ev *evaluator) applySubst() {
	rewritten := NewDatabase()
	remap := make(map[string]string) // old fact key -> new fact key
	for pred, rel := range ev.db.rels {
		for _, t := range rel.facts {
			nt := make(Tuple, len(t))
			for i, v := range t {
				nt[i] = ev.resolve(v)
			}
			oldKey := factRef{pred, t}.key()
			newKey := factRef{pred, nt}.key()
			remap[oldKey] = newKey
			rewritten.addTuple(pred, nt)
		}
	}
	ev.db = rewritten
	newProv := make(map[string]derivation, len(ev.prov))
	for k, d := range ev.prov {
		nk := k
		if r, ok := remap[k]; ok {
			nk = r
		}
		nb := make([]factRef, len(d.body))
		for i, f := range d.body {
			nt := make(Tuple, len(f.t))
			for j, v := range f.t {
				nt[j] = ev.resolve(v)
			}
			nb[i] = factRef{f.pred, nt}
		}
		if _, exists := newProv[nk]; !exists {
			newProv[nk] = derivation{rule: d.rule, body: nb}
		}
	}
	ev.prov = newProv
}
