package datalog

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Database is a set of ground facts grouped by predicate.
//
// Storage is columnar and interned: every constant is interned once into a
// dense uint32 id (see interner in val.go) and each relation stores its
// facts as flat rows of ids in one arena. Dedup is an open-addressed set
// over row hashes, and join acceleration comes from per-column-set hash
// indexes built on demand by the evaluator's plan layer — there are no
// per-fact key strings anywhere.
type Database struct {
	in     *interner
	rels   map[string]*relation
	bytes  atomic.Int64 // structural bytes (rows + dedup set + indexes)
	nfacts atomic.Int64
}

// relation holds one predicate's facts as flat rows in insertion order.
// Mixed arities are allowed (the seed engine allowed them too): offs
// delimits rows, so row i is data[offs[i]:offs[i+1]].
type relation struct {
	data []uint32
	offs []uint32 // len(offs) == nrows+1, offs[0] == 0
	set  rowSet
	// structBytes is the row+set footprint, excluding indexes; clones
	// carry rows but drop indexes, so the two are tracked apart.
	structBytes int64
	indexes     []*joinIndex
}

func newRelation() *relation { return &relation{offs: []uint32{0}} }

func (r *relation) nrows() int { return len(r.offs) - 1 }

func (r *relation) row(i int) []uint32 { return r.data[r.offs[i]:r.offs[i+1]] }

// rowSet is the dedup structure: open addressing over row hashes, storing
// row positions + 1 (0 marks an empty slot). Collisions are resolved by
// comparing the actual rows, so hash quality only affects speed.
type rowSet struct {
	slots []uint32
	used  int
}

func hashRow(row []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range row {
		h ^= uint64(v)
		h *= 1099511628211
	}
	h ^= uint64(len(row))
	h *= 1099511628211
	return h
}

func rowsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (r *relation) findRow(row []uint32) (uint32, bool) {
	if len(r.set.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(r.set.slots) - 1)
	for i := hashRow(row) & mask; ; i = (i + 1) & mask {
		s := r.set.slots[i]
		if s == 0 {
			return 0, false
		}
		pos := s - 1
		if rowsEqual(r.row(int(pos)), row) {
			return pos, true
		}
	}
}

func (r *relation) growSet() {
	n := len(r.set.slots) * 2
	if n == 0 {
		n = 16
	}
	slots := make([]uint32, n)
	mask := uint64(n - 1)
	for pos := 0; pos < r.nrows(); pos++ {
		h := hashRow(r.row(pos)) & mask
		for slots[h] != 0 {
			h = (h + 1) & mask
		}
		slots[h] = uint32(pos) + 1
	}
	r.set.slots = slots
}

// rowOverhead is the estimated per-row cost beyond the ids themselves:
// the offs entry plus the amortized dedup-set slot.
const rowOverhead = 20

// indexEntryOverhead is the estimated per-row cost of one join index:
// the bucket slice entry plus amortized map bucket space.
const indexEntryOverhead = 16

// addRow appends a row unless present, returning its position and whether
// it was added. Every existing index of matching arity is updated
// synchronously, so facts derived mid-pass are visible to index scans the
// same way they are to full scans.
func (r *relation) addRow(db *Database, row []uint32) (uint32, bool) {
	if pos, ok := r.findRow(row); ok {
		return pos, false
	}
	if (r.set.used+1)*4 >= len(r.set.slots)*3 {
		r.growSet()
	}
	pos := uint32(r.nrows())
	r.data = append(r.data, row...)
	r.offs = append(r.offs, uint32(len(r.data)))
	mask := uint64(len(r.set.slots) - 1)
	h := hashRow(row) & mask
	for r.set.slots[h] != 0 {
		h = (h + 1) & mask
	}
	r.set.slots[h] = pos + 1
	r.set.used++
	sb := int64(4*len(row) + rowOverhead)
	r.structBytes += sb
	grow := sb
	for _, ix := range r.indexes {
		if ix.arity == len(row) {
			ix.add(row, pos)
			grow += indexEntryOverhead
		}
	}
	db.bytes.Add(grow)
	db.nfacts.Add(1)
	return pos, true
}

// joinIndex maps the hash of a column subset to the row positions carrying
// those column values, in ascending (= insertion) order. Buckets may mix
// rows whose key columns merely hash together — the matcher re-verifies
// every candidate, exactly as the seed engine's byFirst index did — so the
// index can never change which rows match, only how many are tried.
type joinIndex struct {
	arity int
	mask  uint64 // bit i set: column i is a key column
	m     map[uint64][]uint32
}

func (ix *joinIndex) keyOf(row []uint32) uint64 {
	h := uint64(14695981039346656037)
	for i, v := range row {
		if ix.mask&(1<<uint(i)) != 0 {
			h ^= uint64(v)
			h *= 1099511628211
		}
	}
	return h
}

func (ix *joinIndex) add(row []uint32, pos uint32) {
	k := ix.keyOf(row)
	ix.m[k] = append(ix.m[k], pos)
}

// getIndex returns the relation's index over the given column mask for
// rows of the given arity, building and back-filling it on first use. Only
// the evaluator's sequential plan-resolution phase calls this; parallel
// phases see a frozen index list.
func (r *relation) getIndex(db *Database, arity int, mask uint64) *joinIndex {
	for _, ix := range r.indexes {
		if ix.arity == arity && ix.mask == mask {
			return ix
		}
	}
	ix := &joinIndex{arity: arity, mask: mask, m: make(map[uint64][]uint32)}
	n := 0
	for pos := 0; pos < r.nrows(); pos++ {
		row := r.row(pos)
		if len(row) == arity {
			ix.add(row, uint32(pos))
			n++
		}
	}
	r.indexes = append(r.indexes, ix)
	db.bytes.Add(int64(n) * indexEntryOverhead)
	return ix
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{in: newInterner(), rels: make(map[string]*relation)}
}

// Add inserts a fact; duplicates are ignored.
func (db *Database) Add(pred string, args ...Val) {
	db.addTuple(pred, Tuple(args))
}

func (db *Database) addTuple(pred string, t Tuple) bool {
	row := make([]uint32, len(t))
	for i, v := range t {
		row[i] = db.in.intern(v)
	}
	_, added := db.rel(pred).addRow(db, row)
	return added
}

func (db *Database) rel(pred string) *relation {
	r, ok := db.rels[pred]
	if !ok {
		r = newRelation()
		db.rels[pred] = r
	}
	return r
}

// EstimatedBytes reports the database's running heap-size estimate: the
// structural footprint of the rows, dedup sets and join indexes plus the
// interned-value arena. Governed evaluations charge the growth of this
// figure against their memory budget every fixpoint round. Clones share
// their parent's interner, so the arena component is counted in full on
// both — a deliberate overestimate that keeps the budget conservative.
func (db *Database) EstimatedBytes() int64 { return db.bytes.Load() + db.in.bytes.Load() }

// Facts returns the facts of a predicate, sorted.
func (db *Database) Facts(pred string) []Tuple {
	r := db.rels[pred]
	if r == nil {
		return nil
	}
	iv := iview{in: db.in}
	out := make([]Tuple, r.nrows())
	for i := range out {
		out[i] = decodeRow(&iv, r.row(i))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return out
}

func decodeRow(iv *iview, row []uint32) Tuple {
	t := make(Tuple, len(row))
	for i, v := range row {
		t[i] = iv.val(v)
	}
	return t
}

// Has reports whether the fact is present.
func (db *Database) Has(pred string, args ...Val) bool {
	r := db.rels[pred]
	if r == nil {
		return false
	}
	row := make([]uint32, len(args))
	for i, v := range args {
		id, ok := db.in.lookup(v)
		if !ok {
			return false // a never-interned value cannot be in any fact
		}
		row[i] = id
	}
	_, ok := r.findRow(row)
	return ok
}

// Len returns the total number of facts.
func (db *Database) Len() int { return int(db.nfacts.Load()) }

// Predicates returns the sorted predicate names with at least one fact.
func (db *Database) Predicates() []string {
	var out []string
	for p, r := range db.rels {
		if r.nrows() > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// predsInsertionSafe returns the sorted predicate names with facts; used by
// deterministic whole-database walks (applySubst, the seed-compatibility
// conversion in tests).
func (db *Database) predsInsertionSafe() []string { return db.Predicates() }

// insertionFacts decodes a predicate's facts in insertion order — the order
// observable through provenance firsts and labelled-null minting.
func (db *Database) insertionFacts(pred string) []Tuple {
	r := db.rels[pred]
	if r == nil {
		return nil
	}
	iv := iview{in: db.in}
	out := make([]Tuple, r.nrows())
	for i := range out {
		out[i] = decodeRow(&iv, r.row(i))
	}
	return out
}

// clone copies the rows (sharing the interner) and drops the join indexes:
// an evaluation run rebuilds exactly the indexes its plan needs.
func (db *Database) clone() *Database {
	c := &Database{in: db.in, rels: make(map[string]*relation, len(db.rels))}
	var bytes int64
	for p, r := range db.rels {
		nr := &relation{
			data:        append([]uint32(nil), r.data...),
			offs:        append([]uint32(nil), r.offs...),
			set:         rowSet{slots: append([]uint32(nil), r.set.slots...), used: r.set.used},
			structBytes: r.structBytes,
		}
		c.rels[p] = nr
		bytes += r.structBytes
	}
	c.bytes.Store(bytes)
	c.nfacts.Store(db.nfacts.Load())
	return c
}

// maxNullID returns the largest labelled-null id appearing in the database.
// It scans the stored rows rather than the interner: the interner is shared
// with the parent database and sibling clones, and may hold nulls that do
// not occur in this database's facts.
func (db *Database) maxNullID() uint64 {
	var maxID uint64
	iv := iview{in: db.in}
	var scan func(v Val)
	scan = func(v Val) {
		switch v.k {
		case KNull:
			if v.id > maxID {
				maxID = v.id
			}
		case KList:
			for _, e := range v.l {
				scan(e)
			}
		}
	}
	seen := make(map[uint32]bool)
	for _, r := range db.rels {
		for _, v := range r.data {
			if !seen[v] {
				seen[v] = true
				scan(iv.val(v))
			}
		}
	}
	return maxID
}

// Violation reports an EGD demanding equality of two distinct constants — in
// Vada-SA these are surfaced for human-in-the-loop inspection rather than
// failing the chase.
type Violation struct {
	Rule string
	A, B Val
}

func (v Violation) String() string {
	return fmt.Sprintf("EGD violation: %s requires %s = %s", v.Rule, v.A, v.B)
}

// Options bound a reasoning run. Zero values select the defaults.
type Options struct {
	MaxFacts  int // abort when the database exceeds this many facts (default 1e6)
	MaxRounds int // abort a stratum fixpoint after this many rounds (default 1e5)
	// MaxWork caps the total number of fact-match attempts across the
	// whole run (default 1e9): the guard against join explosions that
	// burn CPU inside a single evaluation pass, where the per-round fact
	// and round caps never trigger. Join indexes prune non-matching
	// candidates before they are attempted, so the same program consumes
	// less of this budget than it did on the pre-index engine.
	MaxWork int64
	// Workers caps the goroutines used for parallel evaluation of
	// independent strata and of large delta partitions within a stratum:
	// 0 means GOMAXPROCS, 1 forces fully sequential evaluation. Results
	// are bit-identical across worker counts — parallelism changes wall
	// clock, never derived facts, provenance or null identities.
	Workers int
	// Trace, when set, receives one line per stratum fixpoint round with
	// the number of facts derived — the operational visibility a
	// production reasoner needs. Tracing forces strata to run
	// sequentially so the line order matches the stratum order.
	Trace io.Writer
	// Governor, when set, is charged the growth of the database's
	// estimated byte size at every fixpoint-round boundary and refunded
	// when the run ends. A failed reservation aborts the run with the
	// governor's error, so a labelled-null-heavy chase trips a byte
	// budget long before the fact-count cap would. Declared locally so
	// this package needs no dependency on the governor implementation;
	// *govern.Governor satisfies it.
	Governor Governor
}

// Governor is the engine-facing slice of a resource governor: reserve
// estimated bytes before growing, release them when done.
type Governor interface {
	ReserveBytes(n int64) error
	ReleaseBytes(n int64)
}

func (o *Options) withDefaults() Options {
	out := Options{MaxFacts: 1_000_000, MaxRounds: 100_000, MaxWork: 1_000_000_000}
	if o != nil {
		if o.MaxFacts > 0 {
			out.MaxFacts = o.MaxFacts
		}
		if o.MaxRounds > 0 {
			out.MaxRounds = o.MaxRounds
		}
		if o.MaxWork > 0 {
			out.MaxWork = o.MaxWork
		}
		out.Workers = o.Workers
		out.Trace = o.Trace
		out.Governor = o.Governor
	}
	return out
}

// EvalStats describes what one reasoning run actually did — the
// observability block behind the paper's interactive-latency claim. All
// figures are exact except MatchAttempts under parallel evaluation, where
// partitions that lose the insertion race may retry, and PeakBytes, which
// is sampled at fixpoint-round boundaries.
type EvalStats struct {
	// Rounds counts fixpoint rounds across all strata and EGD passes,
	// the seed passes included.
	Rounds int `json:"rounds"`
	// Strata is the number of strata the program stratified into.
	Strata int `json:"strata"`
	// ParallelStrata counts strata that ran concurrently with at least
	// one other stratum.
	ParallelStrata int `json:"parallel_strata"`
	// DerivedFacts is the number of facts the run added beyond the
	// extensional database.
	DerivedFacts int `json:"derived_facts"`
	// MatchAttempts is the total fact-match work performed, the figure
	// MaxWork bounds.
	MatchAttempts int64 `json:"match_attempts"`
	// MaxWork echoes the effective work budget the run was held to.
	MaxWork int64 `json:"max_work"`
	// PeakBytes is the highest database size estimate observed at a
	// round boundary — the figure charged to the memory governor.
	PeakBytes int64 `json:"peak_bytes"`
	// EGDPasses counts outer chase passes (strata saturation + EGD
	// application); 1 for programs without EGDs.
	EGDPasses int `json:"egd_passes"`
	// Workers is the effective worker cap the run used.
	Workers int `json:"workers"`
}

// Result is the outcome of a reasoning run: the derived database (input facts
// included) plus any EGD violations encountered.
type Result struct {
	db         *Database
	prov       map[uint64]derivation
	rules      []Rule
	pids       map[string]uint32 // predicate name -> dense id (provenance keys)
	preds      []string          // dense id -> predicate name
	Violations []Violation
	// Stats describes the work the run performed.
	Stats EvalStats
}

// Facts returns the derived facts of a predicate, sorted.
func (r *Result) Facts(pred string) []Tuple { return r.db.Facts(pred) }

// Has reports whether a fact was derived (or given).
func (r *Result) Has(pred string, args ...Val) bool { return r.db.Has(pred, args...) }

// DB exposes the derived database.
func (r *Result) DB() *Database { return r.db }

// derivation records how a fact was first derived: the producing rule and
// the interned ids of the body facts it matched. Fact ids — pred id in the
// high word, row position in the low — replace the pred+Key() strings the
// seed engine concatenated for every provenance and violation lookup.
type derivation struct {
	rule int // index into rules; -1 for extensional facts
	body []uint64
}

// literalOrder picks an evaluation order for a rule body: at each step the
// first literal whose requirements are met — positive atoms any time,
// everything else once its variables are bound. Aggregates go last.
func literalOrder(r *Rule) ([]int, error) {
	if len(r.Body) == 0 {
		return nil, nil
	}
	bound := make(map[string]bool)
	done := make([]bool, len(r.Body))
	var order []int
	aggIdx := -1
	for i, l := range r.Body {
		if l.Kind == LAggAssign || l.Kind == LAggCond {
			aggIdx = i
			done[i] = true
		}
	}
	exprReady := func(e Expr) bool {
		if e == nil {
			return true
		}
		set := make(map[string]bool)
		e.vars(set)
		for v := range set {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	for len(order) < len(r.Body)-btoi(aggIdx >= 0) {
		picked := -1
		for i, l := range r.Body {
			if done[i] {
				continue
			}
			ready := false
			switch l.Kind {
			case LAtom:
				ready = true
			case LNegAtom:
				ready = true
				for _, t := range l.Atom.Args {
					if t.Kind == TVar && !bound[t.Name] {
						ready = false
						break
					}
				}
			case LCmp:
				ready = exprReady(l.L) && exprReady(l.R)
			case LAssign:
				ready = exprReady(l.AssignE)
			}
			if ready {
				picked = i
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("datalog: line %d: cannot order body literals of rule %s",
				r.Line, r.String())
		}
		done[picked] = true
		order = append(order, picked)
		switch l := r.Body[picked]; l.Kind {
		case LAtom:
			for _, t := range l.Atom.Args {
				if t.Kind == TVar {
					bound[t.Name] = true
				}
			}
		case LAssign:
			bound[l.Var] = true
		}
	}
	if aggIdx >= 0 {
		order = append(order, aggIdx)
	}
	return order, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ctxPollMask throttles cancellation polling inside the innermost join
// loops: the context is checked every 8192 fact-match attempts, cheap enough
// to be invisible next to the matching work while still bounding the latency
// between cancellation and the evaluator unwinding.
const ctxPollMask = 8192 - 1

// match unifies an atom pattern against a fact under env, returning the list
// of variables newly bound (to undo) and whether it matched. The compiled
// engine matches on interned ids; this Tuple-level form remains for the EGD
// walk and provenance queries, where rows are already decoded.
func match(a *Atom, f Tuple, env map[string]Val) ([]string, bool) {
	if len(a.Args) != len(f) {
		return nil, false
	}
	var undo []string
	for i, t := range a.Args {
		switch t.Kind {
		case TConst:
			if !Equal(t.Val, f[i]) {
				undoBind(env, undo)
				return nil, false
			}
		case TVar:
			if v, ok := env[t.Name]; ok {
				if !Equal(v, f[i]) {
					undoBind(env, undo)
					return nil, false
				}
			} else {
				env[t.Name] = f[i]
				undo = append(undo, t.Name)
			}
		}
	}
	return undo, true
}

func undoBind(env map[string]Val, undo []string) {
	for _, v := range undo {
		delete(env, v)
	}
}

// boundTermVal resolves a term if it is a constant or an already-bound
// variable.
func boundTermVal(t Term, env map[string]Val) (Val, bool) {
	if t.Kind == TConst {
		return t.Val, true
	}
	v, ok := env[t.Name]
	return v, ok
}

func termVal(t Term, env map[string]Val) (Val, error) {
	if t.Kind == TConst {
		return t.Val, nil
	}
	v, ok := env[t.Name]
	if !ok {
		return Val{}, fmt.Errorf("datalog: unbound variable %s", t.Name)
	}
	return v, nil
}

func evalExpr(e Expr, env map[string]Val) (Val, error) {
	switch x := e.(type) {
	case ExprTerm:
		return termVal(x.T, env)
	case ExprNeg:
		v, err := evalExpr(x.E, env)
		if err != nil {
			return Val{}, err
		}
		if v.k != KNum {
			return Val{}, fmt.Errorf("datalog: unary '-' on non-number %s", v)
		}
		return Num(-v.n), nil
	case ExprCall:
		spec, ok := builtins[x.Name]
		if !ok {
			return Val{}, fmt.Errorf("datalog: unknown function %q", x.Name)
		}
		args := make([]Val, len(x.Args))
		for i, a := range x.Args {
			v, err := evalExpr(a, env)
			if err != nil {
				return Val{}, err
			}
			args[i] = v
		}
		return spec.apply(args)
	case ExprBin:
		l, err := evalExpr(x.L, env)
		if err != nil {
			return Val{}, err
		}
		r, err := evalExpr(x.R, env)
		if err != nil {
			return Val{}, err
		}
		if l.k != KNum || r.k != KNum {
			return Val{}, fmt.Errorf("datalog: arithmetic %q on non-numbers %s, %s", x.Op, l, r)
		}
		switch x.Op {
		case "+":
			return Num(l.n + r.n), nil
		case "-":
			return Num(l.n - r.n), nil
		case "*":
			return Num(l.n * r.n), nil
		case "/":
			if r.n == 0 {
				return Val{}, fmt.Errorf("datalog: division by zero")
			}
			return Num(l.n / r.n), nil
		}
	}
	return Val{}, fmt.Errorf("datalog: bad expression %v", e)
}

func compare(op string, l, r Val) (bool, error) {
	switch op {
	case OpEq:
		return Equal(l, r), nil
	case OpNe:
		return !Equal(l, r), nil
	case OpIn:
		return Contains(r, l), nil
	}
	if l.k == KList || r.k == KList {
		return false, fmt.Errorf("ordered comparison %q on list value", op)
	}
	c := Compare(l, r)
	switch op {
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("unknown comparison %q", op)
}

func foldAgg(fn AggFn, contrib map[string]Val) (Val, error) {
	keys := make([]string, 0, len(contrib))
	for k := range contrib {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	switch fn {
	case AggCount:
		return Num(float64(len(contrib))), nil
	case AggSum:
		s := 0.0
		for _, k := range keys {
			s += contrib[k].NumVal()
		}
		return Num(s), nil
	case AggProd:
		p := 1.0
		for _, k := range keys {
			p *= contrib[k].NumVal()
		}
		return Num(p), nil
	case AggUnion:
		var all []Val
		for _, k := range keys {
			all = append(all, contrib[k].Elems()...)
		}
		return List(all...), nil
	}
	return Val{}, fmt.Errorf("unknown aggregate %s", fn)
}
