package datalog

// Test-only exports. EquivCheck pins the rebuilt evaluator to the frozen
// pre-overhaul engine in eval_seed_test.go: identical fact sets, identical
// provenance answers, identical EGD violations and identical diagnostics,
// at every worker count. External test packages (which can import
// internal/programs without an import cycle) drive it over the declarative
// program library.

import (
	"strings"
	"testing"
)

// EquivWorkers are the worker counts every equivalence check runs under:
// forced-sequential and forced-parallel evaluation must be bit-identical.
var EquivWorkers = []int{1, 4}

// EquivCheck runs the program under both engines and fails the test on any
// observable divergence. opt must use budgets generous enough that neither
// engine trips them: work accounting legitimately differs (the new engine's
// join indexes prune candidates before they are counted), so budget-trip
// errors are the one sanctioned behavioural difference.
func EquivCheck(t testing.TB, name string, p *Program, edb *Database, opt *Options) {
	t.Helper()
	seedRes, seedErr := seedRun(p, edb, opt)
	for _, workers := range EquivWorkers {
		o := Options{}
		if opt != nil {
			o = *opt
		}
		o.Workers = workers
		res, err := Run(p, edb, &o)
		tag := name + "/workers=" + itoa(workers)
		if seedErr != nil || err != nil {
			if seedErr == nil || err == nil || seedErr.Error() != err.Error() {
				t.Fatalf("%s: error mismatch:\n  seed: %v\n  new:  %v", tag, seedErr, err)
			}
			continue
		}
		compareResults(t, tag, p, seedRes, res)
	}
}

// SeedRunFacts runs the frozen pre-overhaul evaluator and returns how many
// facts the given predicate ended with. The regression benchmarks use it to
// pin the overhaul's speedup against the engine it replaced.
func SeedRunFacts(p *Program, edb *Database, opt *Options, pred string) (int, error) {
	res, err := seedRun(p, edb, opt)
	if err != nil {
		return 0, err
	}
	return len(res.Facts(pred)), nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func compareResults(t testing.TB, tag string, p *Program, seedRes *seedResult, res *Result) {
	t.Helper()
	sp, np := seedRes.Predicates(), res.DB().Predicates()
	if strings.Join(sp, ",") != strings.Join(np, ",") {
		t.Fatalf("%s: predicate sets differ:\n  seed: %v\n  new:  %v", tag, sp, np)
	}
	hasEGD := false
	for i := range p.Rules {
		if p.Rules[i].IsEGD {
			hasEGD = true
		}
	}
	for _, pred := range sp {
		sf, nf := seedRes.Facts(pred), res.Facts(pred)
		if len(sf) != len(nf) {
			t.Fatalf("%s: %s has %d facts under seed, %d under new", tag, pred, len(sf), len(nf))
		}
		for i := range sf {
			if sf[i].Key() != nf[i].Key() {
				t.Fatalf("%s: %s fact %d differs:\n  seed: %s\n  new:  %s",
					tag, pred, i, sf[i], nf[i])
			}
		}
		for _, f := range sf {
			sr, sok := seedRes.ProvenanceRule(pred, f...)
			nr, nok := res.ProvenanceRule(pred, f...)
			if sok != nok || (!hasEGD && sr != nr) {
				t.Fatalf("%s: ProvenanceRule(%s%s): seed (%d,%v) vs new (%d,%v)",
					tag, pred, f, sr, sok, nr, nok)
			}
			if hasEGD {
				// applySubst collision tie-breaks are map-ordered in the
				// seed engine and deterministic in the new one; when null
				// unification collapses two derived facts, which derivation
				// survives is unspecified in the seed. Only presence is
				// compared here; full derivation trees are only compared on
				// EGD-free programs.
				continue
			}
			se, serr := seedRes.Explain(pred, f...)
			ne, nerr := res.Explain(pred, f...)
			if (serr == nil) != (nerr == nil) {
				t.Fatalf("%s: Explain(%s%s) error mismatch: seed %v, new %v",
					tag, pred, f, serr, nerr)
			}
			if se != ne {
				t.Fatalf("%s: Explain(%s%s) differs:\n--- seed ---\n%s--- new ---\n%s",
					tag, pred, f, se, ne)
			}
		}
	}
	if len(seedRes.Violations) != len(res.Violations) {
		t.Fatalf("%s: %d violations under seed, %d under new",
			tag, len(seedRes.Violations), len(res.Violations))
	}
	for i := range seedRes.Violations {
		if seedRes.Violations[i].String() != res.Violations[i].String() {
			t.Fatalf("%s: violation %d differs:\n  seed: %s\n  new:  %s",
				tag, i, seedRes.Violations[i], res.Violations[i])
		}
	}
}
