package datalog

import (
	"testing"
	"testing/quick"
)

func TestValAccessors(t *testing.T) {
	if Str("a").StrVal() != "a" {
		t.Error("StrVal")
	}
	if Num(2.5).NumVal() != 2.5 {
		t.Error("NumVal")
	}
	if NullVal(3).NullID() != 3 {
		t.Error("NullID")
	}
	l := List(Num(2), Num(1), Num(2))
	if len(l.Elems()) != 2 {
		t.Errorf("List dedup failed: %v", l)
	}
	if Compare(l.Elems()[0], Num(1)) != 0 {
		t.Errorf("List not sorted: %v", l)
	}
}

func TestValAccessorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"StrVal": func() { Num(1).StrVal() },
		"NumVal": func() { Str("x").NumVal() },
		"NullID": func() { Str("x").NullID() },
		"Elems":  func() { Num(1).Elems() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on wrong kind did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestValString(t *testing.T) {
	cases := map[string]Val{
		`"hi"`:    Str("hi"),
		"2.5":     Num(2.5),
		"⊥7":      NullVal(7),
		`{1,"a"}`: List(Str("a"), Num(1)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ordered := []Val{Num(-1), Num(0), Num(3), Str(""), Str("a"), Str("b"),
		NullVal(1), NullVal(2), List(), List(Num(1)), List(Num(1), Num(2)), List(Num(2))}
	for i := range ordered {
		for j := range ordered {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestKeyInjective(t *testing.T) {
	vals := []Val{
		Str("a"), Str("ab"), Str(""), Str("s3:"), Num(1), Num(-1), Str("1"),
		NullVal(1), List(Str("a")), List(Str("a"), Str("b")), List(List(Str("a"))),
		List(), Str("[]"),
	}
	seen := make(map[string]Val)
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("Key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestKeyEqualityMatchesCompare(t *testing.T) {
	gen := func(s string, n float64, pick uint8) Val {
		switch pick % 4 {
		case 0:
			return Str(s[:len(s)%3])
		case 1:
			return Num(float64(int(n) % 5))
		case 2:
			return NullVal(uint64(pick%3) + 1)
		default:
			return List(Str(s[:len(s)%2]), Num(float64(int(n)%3)))
		}
	}
	f := func(s1 string, n1 float64, p1 uint8, s2 string, n2 float64, p2 uint8) bool {
		if len(s1) == 0 || len(s2) == 0 {
			return true
		}
		a, b := gen(s1, n1, p1), gen(s2, n2, p2)
		return (a.Key() == b.Key()) == Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	l := List(Num(1), Str("x"), NullVal(2))
	if !Contains(l, Num(1)) || !Contains(l, Str("x")) || !Contains(l, NullVal(2)) {
		t.Error("Contains misses present elements")
	}
	if Contains(l, Num(2)) || Contains(Num(1), Num(1)) {
		t.Error("Contains claims absent elements")
	}
}

func TestTupleKeyAndString(t *testing.T) {
	a := Tuple{Str("x"), Num(1)}
	b := Tuple{Str("x"), Num(2)}
	if a.Key() == b.Key() {
		t.Error("tuple keys collide")
	}
	if a.String() != `("x",1)` {
		t.Errorf("Tuple.String() = %q", a.String())
	}
}
