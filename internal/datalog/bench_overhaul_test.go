package datalog_test

// Regression benchmarks for the evaluator overhaul (interned columnar
// store, per-rule join indexes, parallel strata). The Seed/Overhauled pair
// at n=50k is the headline datapoint: the overhauled engine must stay at
// least 5× faster on the declarative k-anonymity workload than the frozen
// pre-overhaul evaluator it replaced. BenchmarkViolationDedup guards the
// interned-id violation key against sliding back to string concatenation.

import (
	"testing"

	"vadasa/internal/datalog"
	"vadasa/internal/programs"
	"vadasa/internal/synth"
)

func kAnonymityWorkload(n int) (*datalog.Program, *datalog.Database) {
	d := synth.Generate(synth.Config{Tuples: n, QIs: 4, Dist: synth.DistU, Seed: 4})
	edb := datalog.NewDatabase()
	programs.TupleFacts(edb, d)
	return programs.KAnonymity(4, 2), edb
}

// BenchmarkSeedEvaluatorKAnonymity50k measures the frozen pre-overhaul
// engine on the paper's k-anonymity program at n=50k. It exists only as the
// denominator of the overhaul's speedup claim.
func BenchmarkSeedEvaluatorKAnonymity50k(b *testing.B) {
	prog, edb := kAnonymityWorkload(50_000)
	opt := &datalog.Options{MaxFacts: 10_000_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := datalog.SeedRunFacts(prog, edb, opt, "riskout")
		if err != nil {
			b.Fatal(err)
		}
		if got != 50_000 {
			b.Fatalf("riskout = %d facts, want 50000", got)
		}
	}
}

// BenchmarkOverhauledEvaluatorKAnonymity50k is the numerator: the same
// workload through the rebuilt engine (sequential; the parallel datapoints
// live in the root bench suite).
func BenchmarkOverhauledEvaluatorKAnonymity50k(b *testing.B) {
	prog, edb := kAnonymityWorkload(50_000)
	opt := &datalog.Options{MaxFacts: 10_000_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := datalog.Run(prog, edb, opt)
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.Facts("riskout")); got != 50_000 {
			b.Fatalf("riskout = %d facts, want 50000", got)
		}
	}
}

// BenchmarkViolationDedup pins the allocation profile of EGD violation
// deduplication. The workload derives one violation per ordered pair of
// distinct capacities within a group, re-derived on every chase pass, so a
// per-candidate string key would dominate the profile.
func BenchmarkViolationDedup(b *testing.B) {
	edb := datalog.NewDatabase()
	for g := 0; g < 20; g++ {
		for v := 0; v < 12; v++ {
			edb.Add("cap", datalog.Num(float64(g)), datalog.Num(float64(g*100+v)))
		}
	}
	prog, err := datalog.Parse(`A = B :- cap(X,A), cap(X,B).`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, runErr := datalog.Run(prog, edb, nil)
		if runErr != nil {
			b.Fatal(runErr)
		}
		// Ordered pairs of distinct capacities per group: the dedup key
		// keeps (a,b) and (b,a) separate, exactly as the seed engine did.
		if got := len(res.Violations); got != 20*12*11 {
			b.Fatalf("violations = %d, want %d", got, 20*12*11)
		}
	}
}
