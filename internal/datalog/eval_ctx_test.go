package datalog

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRunContextPreCancelled(t *testing.T) {
	p := MustParse(`
		f(a).
		g(X) :- f(X).
	`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, p, NewDatabase(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextNilIsBackground(t *testing.T) {
	p := MustParse(`
		f(a).
		g(X) :- f(X).
	`)
	res, err := RunContext(nil, p, NewDatabase(), nil)
	if err != nil {
		t.Fatalf("RunContext(nil, ...) = %v", err)
	}
	if !res.Has("g", Str("a")) {
		t.Fatal("derivation missing")
	}
}

// TestRunContextCancelsLongChase points the engine at a four-way cross join
// far beyond anything it could finish, blows a short deadline, and requires
// the fixpoint to stop within the poll interval instead of burning through
// the (deliberately enormous) work budget.
func TestRunContextCancelsLongChase(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "a(%d).\n", i)
	}
	sb.WriteString("hit(X) :- a(X), a(Y), a(Z), a(W), X > Y, Y > Z, Z > W.\n")
	p := MustParse(sb.String())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, p, NewDatabase(), &Options{MaxWork: 1 << 62})
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s; the fixpoint is not polling the context", elapsed)
	}
}
