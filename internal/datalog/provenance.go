package datalog

import (
	"fmt"
	"strings"
)

// findFact returns the row position of a fact, or false when absent or when
// any argument was never interned (in which case no stored fact can equal it).
func (db *Database) findFact(pred string, t Tuple) (uint32, bool) {
	r := db.rels[pred]
	if r == nil {
		return 0, false
	}
	row := make([]uint32, len(t))
	for i, v := range t {
		id, ok := db.in.lookup(v)
		if !ok {
			return 0, false
		}
		row[i] = id
	}
	return r.findRow(row)
}

// factID resolves a fact to its provenance id. The second result is false
// for facts whose predicate the run never assigned an id — possible only for
// extensional predicates no rule mentions, which by construction have no
// provenance entry.
func (r *Result) factID(pred string, t Tuple) (uint64, bool) {
	pid, ok := r.pids[pred]
	if !ok {
		return 0, false
	}
	pos, ok := r.db.findFact(pred, t)
	if !ok {
		return 0, false
	}
	return fid(pid, pos), true
}

// Explain renders the derivation tree of a fact: which rule produced it and
// from which body facts, recursively down to the extensional component. This
// is the “full explainability by standard logic entailment” property the
// paper claims for Vada-SA: every derived fact carries the exact rule
// binding that motivated it.
//
// It returns an error if the fact is not present in the result.
func (r *Result) Explain(pred string, args ...Val) (string, error) {
	if !r.db.Has(pred, args...) {
		return "", fmt.Errorf("datalog: fact %s%s is not derived", pred, Tuple(args))
	}
	var b strings.Builder
	f, ok := r.factID(pred, Tuple(args))
	if !ok {
		// Present but outside the rule universe: extensional by definition.
		b.WriteString(pred + Tuple(args).String() + "   [extensional]\n")
		return b.String(), nil
	}
	seen := make(map[uint64]bool)
	r.explain(&b, f, 0, seen)
	return b.String(), nil
}

func (r *Result) explain(b *strings.Builder, f uint64, depth int, seen map[uint64]bool) {
	pred := r.preds[uint32(f>>32)]
	iv := iview{in: r.db.in}
	t := decodeRow(&iv, r.db.rels[pred].row(int(uint32(f))))
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(pred + t.String())
	d, derived := r.prov[f]
	switch {
	case !derived:
		b.WriteString("   [extensional]\n")
		return
	case seen[f]:
		b.WriteString("   [see above]\n")
		return
	}
	seen[f] = true
	b.WriteString(fmt.Sprintf("   [rule %d: %s]\n", d.rule, r.rules[d.rule].String()))
	for _, bf := range d.body {
		r.explain(b, bf, depth+1, seen)
	}
}

// ProvenanceRule returns the index of the rule that first derived the fact,
// or -1 for extensional facts. The second result is false if the fact is
// absent.
func (r *Result) ProvenanceRule(pred string, args ...Val) (int, bool) {
	if !r.db.Has(pred, args...) {
		return 0, false
	}
	f, ok := r.factID(pred, Tuple(args))
	if !ok {
		return -1, true
	}
	d, derived := r.prov[f]
	if !derived {
		return -1, true
	}
	return d.rule, true
}

// Binding is one solution of a query pattern: the values bound to the
// pattern's variables, in the order the variables first appear.
type Binding struct {
	Vars []string
	Vals []Val
}

// Get returns the value bound to a variable.
func (b Binding) Get(name string) (Val, bool) {
	for i, v := range b.Vars {
		if v == name {
			return b.Vals[i], true
		}
	}
	return Val{}, false
}

// Query matches a pattern — a predicate with constant and variable terms —
// against the derived database and returns all bindings, sorted by the bound
// values. Repeated variables must match equal values:
//
//	res.Query("rel", V("X"), C(Str("bank1")))   // who controls bank1?
func (r *Result) Query(pred string, pattern ...Term) []Binding {
	var varOrder []string
	seen := map[string]bool{}
	for _, t := range pattern {
		if t.Kind == TVar && !seen[t.Name] {
			seen[t.Name] = true
			varOrder = append(varOrder, t.Name)
		}
	}
	var out []Binding
	atom := &Atom{Pred: pred, Args: pattern}
	env := make(map[string]Val)
	for _, f := range r.db.Facts(pred) {
		undo, ok := match(atom, f, env)
		if !ok {
			continue
		}
		b := Binding{Vars: varOrder, Vals: make([]Val, len(varOrder))}
		for i, name := range varOrder {
			b.Vals[i] = env[name]
		}
		out = append(out, b)
		undoBind(env, undo)
	}
	return out
}
