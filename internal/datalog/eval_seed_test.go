package datalog

// This file is a frozen copy of the pre-overhaul evaluator (string-keyed
// tuples, map-of-slices relations, byFirst join acceleration). It exists so
// the property suite can pin the rebuilt engine to the exact observable
// behaviour of the engine it replaced: fact sets, provenance answers, EGD
// violations, labelled-null identities and diagnostics. It is test-only code
// and must not be "improved" — its value is that it does not change.

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

type seedDatabase struct {
	rels  map[string]*seedRelation
	bytes int64
}

type seedRelation struct {
	facts   []Tuple
	index   map[string]int
	byFirst map[string][]int
}

func newSeedDatabase() *seedDatabase {
	return &seedDatabase{rels: make(map[string]*seedRelation)}
}

// seedFromDatabase converts a columnar database into the legacy shape,
// preserving per-relation insertion order — the order the legacy clone would
// have seen.
func seedFromDatabase(db *Database) *seedDatabase {
	s := newSeedDatabase()
	for _, pred := range db.predsInsertionSafe() {
		for _, t := range db.insertionFacts(pred) {
			s.addTuple(pred, t)
		}
	}
	return s
}

func (db *seedDatabase) addTuple(pred string, t Tuple) bool {
	r, ok := db.rels[pred]
	if !ok {
		r = &seedRelation{index: make(map[string]int), byFirst: make(map[string][]int)}
		db.rels[pred] = r
	}
	k := t.Key()
	if _, dup := r.index[k]; dup {
		return false
	}
	r.index[k] = len(r.facts)
	if len(t) > 0 {
		fk := t[0].Key()
		r.byFirst[fk] = append(r.byFirst[fk], len(r.facts))
	}
	r.facts = append(r.facts, t)
	db.bytes += seedTupleBytes(t) + int64(2*len(k)) + 2*seedMapEntryOverhead
	return true
}

const seedMapEntryOverhead = 48

func seedTupleBytes(t Tuple) int64 {
	n := int64(24)
	for _, v := range t {
		n += valBytes(v)
	}
	return n
}

func (db *seedDatabase) EstimatedBytes() int64 { return db.bytes }

func (db *seedDatabase) Facts(pred string) []Tuple {
	r := db.rels[pred]
	if r == nil {
		return nil
	}
	out := append([]Tuple(nil), r.facts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return out
}

func (db *seedDatabase) Has(pred string, args ...Val) bool {
	r := db.rels[pred]
	if r == nil {
		return false
	}
	_, ok := r.index[Tuple(args).Key()]
	return ok
}

func (db *seedDatabase) Len() int {
	n := 0
	for _, r := range db.rels {
		n += len(r.facts)
	}
	return n
}

func (db *seedDatabase) Predicates() []string {
	var out []string
	for p, r := range db.rels {
		if len(r.facts) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func (db *seedDatabase) clone() *seedDatabase {
	c := newSeedDatabase()
	for p, r := range db.rels {
		nr := &seedRelation{
			facts:   make([]Tuple, len(r.facts)),
			index:   make(map[string]int, len(r.index)),
			byFirst: make(map[string][]int, len(r.byFirst)),
		}
		copy(nr.facts, r.facts)
		for k, v := range r.index {
			nr.index[k] = v
		}
		for k, v := range r.byFirst {
			nr.byFirst[k] = append([]int(nil), v...)
		}
		c.rels[p] = nr
	}
	c.bytes = db.bytes
	return c
}

func (db *seedDatabase) maxNullID() uint64 {
	var maxID uint64
	var scan func(v Val)
	scan = func(v Val) {
		switch v.k {
		case KNull:
			if v.id > maxID {
				maxID = v.id
			}
		case KList:
			for _, e := range v.l {
				scan(e)
			}
		}
	}
	for _, r := range db.rels {
		for _, t := range r.facts {
			for _, v := range t {
				scan(v)
			}
		}
	}
	return maxID
}

// seedResult mirrors the legacy Result: string-keyed provenance over the
// legacy database.
type seedResult struct {
	db         *seedDatabase
	prov       map[string]seedDerivation
	rules      []Rule
	Violations []Violation
}

func (r *seedResult) Facts(pred string) []Tuple         { return r.db.Facts(pred) }
func (r *seedResult) Has(pred string, args ...Val) bool { return r.db.Has(pred, args...) }
func (r *seedResult) Predicates() []string              { return r.db.Predicates() }
func (r *seedResult) ViolationList() []Violation        { return r.Violations }

type seedFactRef struct {
	pred string
	t    Tuple
}

func (f seedFactRef) key() string    { return f.pred + "/" + f.t.Key() }
func (f seedFactRef) String() string { return f.pred + f.t.String() }

type seedDerivation struct {
	rule int
	body []seedFactRef
}

func (r *seedResult) Explain(pred string, args ...Val) (string, error) {
	if !r.db.Has(pred, args...) {
		return "", fmt.Errorf("datalog: fact %s%s is not derived", pred, Tuple(args))
	}
	var b strings.Builder
	seen := make(map[string]bool)
	r.explain(&b, seedFactRef{pred, Tuple(args)}, 0, seen)
	return b.String(), nil
}

func (r *seedResult) explain(b *strings.Builder, f seedFactRef, depth int, seen map[string]bool) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteString(f.String())
	key := f.key()
	d, derived := r.prov[key]
	switch {
	case !derived:
		b.WriteString("   [extensional]\n")
		return
	case seen[key]:
		b.WriteString("   [see above]\n")
		return
	}
	seen[key] = true
	b.WriteString(fmt.Sprintf("   [rule %d: %s]\n", d.rule, r.rules[d.rule].String()))
	for _, bf := range d.body {
		r.explain(b, bf, depth+1, seen)
	}
}

func (r *seedResult) ProvenanceRule(pred string, args ...Val) (int, bool) {
	if !r.db.Has(pred, args...) {
		return 0, false
	}
	d, derived := r.prov[seedFactRef{pred, Tuple(args)}.key()]
	if !derived {
		return -1, true
	}
	return d.rule, true
}

type seedEvaluator struct {
	ctx      context.Context
	prog     *Program
	opt      Options
	db       *seedDatabase
	prov     map[string]seedDerivation
	strata   map[string]int
	nStrata  int
	nullCtr  uint64
	skolem   map[string]Val
	orders   [][]int
	work     int64
	charged  int64
	aggState []map[string]*seedAggGroup
	subst    map[uint64]Val
}

func (ev *seedEvaluator) chargeMemory() error {
	if ev.opt.Governor == nil {
		return nil
	}
	b := ev.db.EstimatedBytes()
	if b <= ev.charged {
		return nil
	}
	//governcharge:ok incremental charge; seedRunContext defers ReleaseBytes(ev.charged) for the whole run
	if err := ev.opt.Governor.ReserveBytes(b - ev.charged); err != nil {
		return fmt.Errorf("datalog: database estimated at %d bytes: %w", b, err)
	}
	ev.charged = b
	return nil
}

type seedAggGroup struct {
	env     map[string]Val
	used    []seedFactRef
	contrib map[string]Val
	emitted bool
	dirty   bool
}

func seedRun(p *Program, edb *Database, opt *Options) (*seedResult, error) {
	return seedRunContext(context.Background(), p, edb, opt)
}

func seedRunContext(ctx context.Context, p *Program, edb *Database, opt *Options) (*seedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	strata, n, err := stratify(p)
	if err != nil {
		return nil, err
	}
	sdb := seedFromDatabase(edb)
	ev := &seedEvaluator{
		ctx:     ctx,
		prog:    p,
		opt:     opt.withDefaults(),
		db:      sdb.clone(),
		prov:    make(map[string]seedDerivation),
		strata:  strata,
		nStrata: n,
		nullCtr: sdb.maxNullID(),
		skolem:  make(map[string]Val),
		subst:   make(map[uint64]Val),
	}
	if ev.opt.Governor != nil {
		defer func() { ev.opt.Governor.ReleaseBytes(ev.charged) }()
	}
	if err := ev.chargeMemory(); err != nil {
		return nil, err
	}
	ev.orders = make([][]int, len(p.Rules))
	for i := range p.Rules {
		ord, err := literalOrder(&p.Rules[i])
		if err != nil {
			return nil, err
		}
		ev.orders[i] = ord
	}

	for i := range p.Rules {
		r := &p.Rules[i]
		if r.IsEGD || len(r.Body) > 0 {
			continue
		}
		for _, h := range r.Heads {
			t := make(Tuple, len(h.Args))
			for j, a := range h.Args {
				t[j] = a.Val
			}
			ev.db.addTuple(h.Pred, t)
		}
	}

	var violations []Violation
	seenViol := make(map[string]bool)
	for pass := 0; ; pass++ {
		if pass > ev.opt.MaxRounds {
			return nil, fmt.Errorf("datalog: EGD unification did not converge")
		}
		if err := ev.ctxErr(); err != nil {
			return nil, err
		}
		if err := ev.runStrata(); err != nil {
			return nil, err
		}
		unified, viols, err := ev.runEGDs()
		if err != nil {
			return nil, err
		}
		for _, v := range viols {
			k := v.Rule + "|" + v.A.Key() + "|" + v.B.Key()
			if !seenViol[k] {
				seenViol[k] = true
				violations = append(violations, v)
			}
		}
		if !unified {
			break
		}
		ev.applySubst()
	}
	return &seedResult{db: ev.db, prov: ev.prov, rules: p.Rules, Violations: violations}, nil
}

func (ev *seedEvaluator) runStrata() error {
	ruleStratum := make([]int, len(ev.prog.Rules))
	ev.aggState = make([]map[string]*seedAggGroup, len(ev.prog.Rules))
	for i := range ev.prog.Rules {
		r := &ev.prog.Rules[i]
		if r.IsEGD || len(r.Body) == 0 {
			ruleStratum[i] = -1
			continue
		}
		ruleStratum[i] = ev.strata[r.Heads[0].Pred]
		ev.aggState[i] = make(map[string]*seedAggGroup)
	}
	for s := 0; s < ev.nStrata; s++ {
		var rules []int
		for i, rs := range ruleStratum {
			if rs == s {
				rules = append(rules, i)
			}
		}
		if len(rules) == 0 {
			continue
		}
		if err := ev.fixpoint(s, rules); err != nil {
			return err
		}
	}
	return nil
}

func (ev *seedEvaluator) fixpoint(stratum int, rules []int) error {
	delta := make(map[string][]Tuple)
	collect := func(added []seedFactRef) {
		for _, f := range added {
			delta[f.pred] = append(delta[f.pred], f.t)
		}
	}

	var added []seedFactRef
	for _, ri := range rules {
		a, err := ev.evalRule(ri, -1, nil)
		if err != nil {
			return err
		}
		added = append(added, a...)
	}
	collect(added)
	if ev.opt.Trace != nil {
		fmt.Fprintf(ev.opt.Trace, "stratum %d seed: %d rules, %d facts derived, db %d\n",
			stratum, len(rules), len(added), ev.db.Len())
	}
	if err := ev.chargeMemory(); err != nil {
		return err
	}

	for round := 0; len(delta) > 0; round++ {
		if round > ev.opt.MaxRounds {
			return fmt.Errorf("datalog: stratum %d exceeded %d rounds", stratum, ev.opt.MaxRounds)
		}
		if err := ev.ctxErr(); err != nil {
			return err
		}
		if ev.db.Len() > ev.opt.MaxFacts {
			return fmt.Errorf("datalog: database exceeded %d facts (runaway chase?)", ev.opt.MaxFacts)
		}
		if err := ev.chargeMemory(); err != nil {
			return err
		}
		next := make(map[string][]Tuple)
		for _, ri := range rules {
			r := &ev.prog.Rules[ri]
			for li, l := range r.Body {
				if l.Kind != LAtom {
					continue
				}
				if ev.strata[l.Atom.Pred] != stratum {
					continue
				}
				d := delta[l.Atom.Pred]
				if len(d) == 0 {
					continue
				}
				a, err := ev.evalRule(ri, li, d)
				if err != nil {
					return err
				}
				for _, f := range a {
					next[f.pred] = append(next[f.pred], f.t)
				}
			}
		}
		if ev.opt.Trace != nil {
			derived := 0
			for _, fs := range next {
				derived += len(fs)
			}
			fmt.Fprintf(ev.opt.Trace, "stratum %d round %d: %d facts derived, db %d\n",
				stratum, round+1, derived, ev.db.Len())
		}
		delta = next
	}
	return nil
}

func (ev *seedEvaluator) evalRule(ri, restrict int, restrictTo []Tuple) ([]seedFactRef, error) {
	r := &ev.prog.Rules[ri]
	var out []seedFactRef
	env := make(map[string]Val)
	var used []seedFactRef
	var evalErr error

	var emit func()
	aggLit := -1
	for i, l := range r.Body {
		if l.Kind == LAggAssign || l.Kind == LAggCond {
			aggLit = i
		}
	}

	if aggLit == -1 {
		emit = func() {
			refs, err := ev.emitHeads(ri, env, used)
			if err != nil {
				evalErr = err
				return
			}
			out = append(out, refs...)
		}
	} else {
		emit = func() {
			if err := ev.recordAgg(ri, aggLit, env, used); err != nil {
				evalErr = err
			}
		}
	}

	order := ev.orders[ri]
	var walk func(step int)
	walk = func(step int) {
		if evalErr != nil {
			return
		}
		if step == len(order) || (aggLit >= 0 && order[step] == aggLit) {
			emit()
			return
		}
		l := &r.Body[order[step]]
		switch l.Kind {
		case LAtom:
			if order[step] == restrict {
				for _, f := range restrictTo {
					if err := ev.spend(); err != nil {
						evalErr = err
						return
					}
					undo, ok := match(l.Atom, f, env)
					if !ok {
						continue
					}
					used = append(used, seedFactRef{l.Atom.Pred, f})
					walk(step + 1)
					used = used[:len(used)-1]
					undoBind(env, undo)
					if evalErr != nil {
						return
					}
				}
				return
			}
			rel := ev.db.rels[l.Atom.Pred]
			if rel == nil {
				return
			}
			if len(l.Atom.Args) > 0 {
				if fv, ok := boundTermVal(l.Atom.Args[0], env); ok {
					bucket := rel.byFirst[fv.Key()]
					for bi := 0; bi < len(bucket); bi++ {
						if err := ev.spend(); err != nil {
							evalErr = err
							return
						}
						f := rel.facts[bucket[bi]]
						undo, ok := match(l.Atom, f, env)
						if !ok {
							continue
						}
						used = append(used, seedFactRef{l.Atom.Pred, f})
						walk(step + 1)
						used = used[:len(used)-1]
						undoBind(env, undo)
						if evalErr != nil {
							return
						}
						bucket = rel.byFirst[fv.Key()]
					}
					return
				}
			}
			for fi := 0; fi < len(rel.facts); fi++ {
				if err := ev.spend(); err != nil {
					evalErr = err
					return
				}
				f := rel.facts[fi]
				undo, ok := match(l.Atom, f, env)
				if !ok {
					continue
				}
				used = append(used, seedFactRef{l.Atom.Pred, f})
				walk(step + 1)
				used = used[:len(used)-1]
				undoBind(env, undo)
				if evalErr != nil {
					return
				}
			}
		case LNegAtom:
			t := make(Tuple, len(l.Atom.Args))
			for i, a := range l.Atom.Args {
				v, err := termVal(a, env)
				if err != nil {
					evalErr = err
					return
				}
				t[i] = v
			}
			if !ev.db.Has(l.Atom.Pred, t...) {
				walk(step + 1)
			}
		case LCmp:
			lv, err := evalExpr(l.L, env)
			if err != nil {
				evalErr = err
				return
			}
			rv, err := evalExpr(l.R, env)
			if err != nil {
				evalErr = err
				return
			}
			ok, err := compare(l.Op, lv, rv)
			if err != nil {
				evalErr = fmt.Errorf("line %d: %w", r.Line, err)
				return
			}
			if ok {
				walk(step + 1)
			}
		case LAssign:
			v, err := evalExpr(l.AssignE, env)
			if err != nil {
				evalErr = err
				return
			}
			if old, bound := env[l.Var]; bound {
				if Equal(old, v) {
					walk(step + 1)
				}
				return
			}
			env[l.Var] = v
			walk(step + 1)
			delete(env, l.Var)
		}
	}
	walk(0)
	if evalErr != nil {
		return nil, evalErr
	}

	if aggLit >= 0 {
		refs, err := ev.flushAgg(ri, aggLit)
		if err != nil {
			return nil, err
		}
		out = append(out, refs...)
	}
	return out, nil
}

func (ev *seedEvaluator) spend() error {
	ev.work++
	if ev.work > ev.opt.MaxWork {
		return fmt.Errorf("datalog: exceeded the work budget of %d match attempts (join explosion?)", ev.opt.MaxWork)
	}
	if ev.work&ctxPollMask == 0 {
		return ev.ctxErr()
	}
	return nil
}

func (ev *seedEvaluator) ctxErr() error {
	if err := ev.ctx.Err(); err != nil {
		return fmt.Errorf("datalog: evaluation cancelled after %d match attempts: %w", ev.work, err)
	}
	return nil
}

func (ev *seedEvaluator) factsFor(pred string) []Tuple {
	r := ev.db.rels[pred]
	if r == nil {
		return nil
	}
	return r.facts
}

func (ev *seedEvaluator) emitHeads(ri int, env map[string]Val, used []seedFactRef) ([]seedFactRef, error) {
	r := &ev.prog.Rules[ri]
	var cleanup []string
	if len(r.Existential) > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "r%d|", ri)
		var frontier []string
		for _, h := range r.Heads {
			for _, t := range h.Args {
				if t.Kind == TVar {
					if _, ok := env[t.Name]; ok {
						frontier = append(frontier, t.Name)
					}
				}
			}
		}
		sort.Strings(frontier)
		for _, v := range frontier {
			b.WriteString(v)
			b.WriteByte('=')
			b.WriteString(env[v].Key())
			b.WriteByte(';')
		}
		base := b.String()
		for _, x := range r.Existential {
			key := base + "!" + x
			null, ok := ev.skolem[key]
			if !ok {
				ev.nullCtr++
				null = NullVal(ev.nullCtr)
				ev.skolem[key] = null
			}
			env[x] = ev.resolve(null)
			cleanup = append(cleanup, x)
		}
	}
	defer undoBind(env, cleanup)

	var out []seedFactRef
	usedCopy := append([]seedFactRef(nil), used...)
	for _, h := range r.Heads {
		t := make(Tuple, len(h.Args))
		for i, a := range h.Args {
			v, err := termVal(a, env)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", r.Line, err)
			}
			t[i] = v
		}
		if ev.db.addTuple(h.Pred, t) {
			ref := seedFactRef{h.Pred, t}
			ev.prov[ref.key()] = seedDerivation{rule: ri, body: usedCopy}
			out = append(out, ref)
		}
	}
	return out, nil
}

func (ev *seedEvaluator) recordAgg(ri, aggLit int, env map[string]Val, used []seedFactRef) error {
	r := &ev.prog.Rules[ri]
	l := &r.Body[aggLit]

	groupVars := seedGroupVars(r, l)
	var b strings.Builder
	genv := make(map[string]Val, len(groupVars))
	for _, v := range groupVars {
		val, ok := env[v]
		if !ok {
			return fmt.Errorf("datalog: line %d: head variable %s unbound at aggregate", r.Line, v)
		}
		genv[v] = val
		b.WriteString(val.Key())
		b.WriteByte('|')
	}
	gkey := b.String()

	st := ev.aggState[ri]
	g, ok := st[gkey]
	if !ok {
		g = &seedAggGroup{env: genv, used: append([]seedFactRef(nil), used...), contrib: make(map[string]Val)}
		st[gkey] = g
	}

	cv, err := evalExpr(l.Agg.Contrib, env)
	if err != nil {
		return err
	}
	var contribution Val
	switch l.Agg.Fn {
	case AggCount:
		contribution = Num(1)
	case AggUnion:
		v, err := evalExpr(l.Agg.Arg, env)
		if err != nil {
			return err
		}
		contribution = v
	default:
		v, err := evalExpr(l.Agg.Arg, env)
		if err != nil {
			return err
		}
		if v.k != KNum {
			return fmt.Errorf("datalog: line %d: %s over non-number %s", r.Line, l.Agg.Fn, v)
		}
		contribution = v
	}

	ck := cv.Key()
	if old, ok := g.contrib[ck]; ok {
		if l.Agg.Fn == AggUnion {
			merged := List(append(old.Elems(), contribution)...)
			if !Equal(merged, old) {
				g.contrib[ck] = merged
				g.dirty = true
			}
		} else if Compare(contribution, old) > 0 {
			g.contrib[ck] = contribution
			g.dirty = true
		}
	} else {
		if l.Agg.Fn == AggUnion {
			contribution = List(contribution)
		}
		g.contrib[ck] = contribution
		g.dirty = true
	}
	return nil
}

func seedGroupVars(r *Rule, l *Literal) []string {
	skip := map[string]bool{}
	if l.Kind == LAggAssign {
		skip[l.Var] = true
	}
	for _, x := range r.Existential {
		skip[x] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, h := range r.Heads {
		for _, t := range h.Args {
			if t.Kind == TVar && !skip[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

func (ev *seedEvaluator) flushAgg(ri, aggLit int) ([]seedFactRef, error) {
	r := &ev.prog.Rules[ri]
	l := &r.Body[aggLit]
	var out []seedFactRef

	gkeys := make([]string, 0, len(ev.aggState[ri]))
	for k, g := range ev.aggState[ri] {
		if g.dirty {
			gkeys = append(gkeys, k)
		}
	}
	sort.Strings(gkeys)

	for _, gk := range gkeys {
		g := ev.aggState[ri][gk]
		g.dirty = false
		agg, err := seedFoldAgg(l.Agg.Fn, g.contrib)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", r.Line, err)
		}
		env := make(map[string]Val, len(g.env)+1)
		for k, v := range g.env {
			env[k] = v
		}
		switch l.Kind {
		case LAggAssign:
			env[l.Var] = agg
		case LAggCond:
			rhs, err := evalExpr(l.R, env)
			if err != nil {
				return nil, err
			}
			ok, err := compare(l.Op, agg, rhs)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", r.Line, err)
			}
			if !ok || g.emitted {
				continue
			}
			g.emitted = true
		}
		refs, err := ev.emitHeads(ri, env, g.used)
		if err != nil {
			return nil, err
		}
		out = append(out, refs...)
	}
	return out, nil
}

func seedFoldAgg(fn AggFn, contrib map[string]Val) (Val, error) {
	keys := make([]string, 0, len(contrib))
	for k := range contrib {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	switch fn {
	case AggCount:
		return Num(float64(len(contrib))), nil
	case AggSum:
		s := 0.0
		for _, k := range keys {
			s += contrib[k].NumVal()
		}
		return Num(s), nil
	case AggProd:
		p := 1.0
		for _, k := range keys {
			p *= contrib[k].NumVal()
		}
		return Num(p), nil
	case AggUnion:
		var all []Val
		for _, k := range keys {
			all = append(all, contrib[k].Elems()...)
		}
		return List(all...), nil
	}
	return Val{}, fmt.Errorf("unknown aggregate %s", fn)
}

func (ev *seedEvaluator) runEGDs() (unified bool, viols []Violation, err error) {
	for ri := range ev.prog.Rules {
		r := &ev.prog.Rules[ri]
		if !r.IsEGD {
			continue
		}
		if err := ev.ctxErr(); err != nil {
			return false, nil, err
		}
		env := make(map[string]Val)
		var evalErr error
		order := ev.orders[ri]
		var walk func(step int)
		walk = func(step int) {
			if evalErr != nil {
				return
			}
			if step == len(order) {
				l, errL := termVal(r.EGDL, env)
				if errL != nil {
					evalErr = errL
					return
				}
				rv, errR := termVal(r.EGDR, env)
				if errR != nil {
					evalErr = errR
					return
				}
				l, rv = ev.resolve(l), ev.resolve(rv)
				if Equal(l, rv) {
					return
				}
				switch {
				case l.k == KNull:
					ev.subst[l.id] = rv
					unified = true
				case rv.k == KNull:
					ev.subst[rv.id] = l
					unified = true
				default:
					viols = append(viols, Violation{Rule: r.String(), A: l, B: rv})
				}
				return
			}
			lit := &r.Body[order[step]]
			switch lit.Kind {
			case LAtom:
				for _, f := range ev.factsFor(lit.Atom.Pred) {
					undo, ok := match(lit.Atom, f, env)
					if !ok {
						continue
					}
					walk(step + 1)
					undoBind(env, undo)
					if evalErr != nil {
						return
					}
				}
			case LNegAtom:
				t := make(Tuple, len(lit.Atom.Args))
				for i, a := range lit.Atom.Args {
					v, err := termVal(a, env)
					if err != nil {
						evalErr = err
						return
					}
					t[i] = v
				}
				if !ev.db.Has(lit.Atom.Pred, t...) {
					walk(step + 1)
				}
			case LCmp:
				lv, errL := evalExpr(lit.L, env)
				if errL != nil {
					evalErr = errL
					return
				}
				rv, errR := evalExpr(lit.R, env)
				if errR != nil {
					evalErr = errR
					return
				}
				ok, errC := compare(lit.Op, lv, rv)
				if errC != nil {
					evalErr = errC
					return
				}
				if ok {
					walk(step + 1)
				}
			case LAssign:
				v, errA := evalExpr(lit.AssignE, env)
				if errA != nil {
					evalErr = errA
					return
				}
				env[lit.Var] = v
				walk(step + 1)
				delete(env, lit.Var)
			default:
				evalErr = fmt.Errorf("datalog: aggregates are not allowed in EGD bodies")
			}
		}
		walk(0)
		if evalErr != nil {
			return false, nil, evalErr
		}
	}
	return unified, viols, nil
}

func (ev *seedEvaluator) resolve(v Val) Val {
	for i := 0; v.k == KNull; i++ {
		next, ok := ev.subst[v.id]
		if !ok {
			return v
		}
		v = next
		if i > len(ev.subst) {
			return v
		}
	}
	if v.k == KList {
		elems := make([]Val, len(v.l))
		for i, e := range v.l {
			elems[i] = ev.resolve(e)
		}
		return List(elems...)
	}
	return v
}

func (ev *seedEvaluator) applySubst() {
	rewritten := newSeedDatabase()
	remap := make(map[string]string)
	for pred, rel := range ev.db.rels {
		for _, t := range rel.facts {
			nt := make(Tuple, len(t))
			for i, v := range t {
				nt[i] = ev.resolve(v)
			}
			oldKey := seedFactRef{pred, t}.key()
			newKey := seedFactRef{pred, nt}.key()
			remap[oldKey] = newKey
			rewritten.addTuple(pred, nt)
		}
	}
	ev.db = rewritten
	newProv := make(map[string]seedDerivation, len(ev.prov))
	for k, d := range ev.prov {
		nk := k
		if r, ok := remap[k]; ok {
			nk = r
		}
		nb := make([]seedFactRef, len(d.body))
		for i, f := range d.body {
			nt := make(Tuple, len(f.t))
			for j, v := range f.t {
				nt[j] = ev.resolve(v)
			}
			nb[i] = seedFactRef{f.pred, nt}
		}
		if _, exists := newProv[nk]; !exists {
			newProv[nk] = seedDerivation{rule: d.rule, body: nb}
		}
	}
	ev.prov = newProv
}
