package datalog

import (
	"fmt"
	"sort"
)

// stratify computes a stratification of the program's predicates. Normal
// dependencies (positive body atom → head) may stay within a stratum;
// special dependencies — negated body atoms, and every body atom of a rule
// whose aggregate binds a head variable — must cross strata strictly. An
// error is reported when a special dependency lies on a cycle, i.e. the
// program uses negation (or head-binding aggregation) through recursion.
//
// Aggregates used as mere monotonic conditions (e.g. msum(W,[Z]) > 0.5) are
// allowed inside recursion: their truth only ever flips from false to true
// as contributions accumulate, so the fixpoint stays monotone — this is the
// engine-level counterpart of Vadalog's monotonic aggregations.
func stratify(p *Program) (strataOf map[string]int, numStrata int, err error) {
	type edge struct {
		from, to string
		special  bool
	}
	preds := make(map[string]bool)
	var edges []edge
	for _, r := range p.Rules {
		if r.IsEGD {
			for _, l := range r.Body {
				if l.Kind == LAtom || l.Kind == LNegAtom {
					preds[l.Atom.Pred] = true
				}
			}
			continue
		}
		hasAggAssign := false
		for _, l := range r.Body {
			if l.Kind == LAggAssign {
				hasAggAssign = true
			}
		}
		heads := r.headPreds()
		for _, h := range heads {
			preds[h] = true
		}
		// Heads of one rule are forced into the same stratum.
		for i := 1; i < len(heads); i++ {
			edges = append(edges, edge{from: heads[0], to: heads[i]})
			edges = append(edges, edge{from: heads[i], to: heads[0]})
		}
		for _, l := range r.Body {
			if l.Kind != LAtom && l.Kind != LNegAtom {
				continue
			}
			preds[l.Atom.Pred] = true
			for _, h := range heads {
				edges = append(edges, edge{
					from:    l.Atom.Pred,
					to:      h,
					special: l.Kind == LNegAtom || hasAggAssign,
				})
			}
		}
	}

	names := make([]string, 0, len(preds))
	for p := range preds {
		names = append(names, p)
	}
	sort.Strings(names)
	id := make(map[string]int, len(names))
	for i, n := range names {
		id[n] = i
	}

	// Tarjan SCC.
	n := len(names)
	adj := make([][]edge, n)
	for _, e := range edges {
		adj[id[e.from]] = append(adj[id[e.from]], e)
	}
	index := make([]int, n)
	low := make([]int, n)
	onstk := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter, ncomp := 0, 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onstk[v] = true
		for _, e := range adj[v] {
			w := id[e.to]
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onstk[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstk[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}

	// Special edges inside an SCC are stratification violations.
	for _, e := range edges {
		if e.special && comp[id[e.from]] == comp[id[e.to]] {
			return nil, 0, fmt.Errorf(
				"datalog: program is not stratified: predicate %s depends on %s through negation or head-binding aggregation inside a recursive cycle",
				e.to, e.from)
		}
	}

	// Longest-path strata over the condensation: special edges add 1.
	stratum := make([]int, ncomp)
	changed := true
	for iter := 0; changed; iter++ {
		if iter > ncomp+1 {
			return nil, 0, fmt.Errorf("datalog: internal error: stratification did not converge")
		}
		changed = false
		for _, e := range edges {
			cf, ct := comp[id[e.from]], comp[id[e.to]]
			want := stratum[cf]
			if e.special {
				want++
			}
			if cf != ct && stratum[ct] < want {
				stratum[ct] = want
				changed = true
			}
		}
	}

	strataOf = make(map[string]int, n)
	maxS := 0
	for i, name := range names {
		s := stratum[comp[i]]
		strataOf[name] = s
		if s > maxS {
			maxS = s
		}
	}
	return strataOf, maxS + 1, nil
}

// Stratification exposes the engine's stratification to static-analysis
// callers: the stratum of every predicate and the number of strata, or the
// error the evaluator itself would report for a non-stratifiable program.
func Stratification(p *Program) (strataOf map[string]int, numStrata int, err error) {
	return stratify(p)
}

// attrPos identifies an argument position of a predicate.
type attrPos struct {
	pred string
	i    int
}

// WardViolation describes one unwarded rule: the dangerous variables — body
// variables that may only ever bind labelled nulls and that propagate to the
// head — and, per variable, the affected body positions (pred[i], 1-based)
// it occurs at, i.e. the positions where a ward atom would have to cover it.
type WardViolation struct {
	RuleIndex int
	Line      int
	Dangerous []string            // sorted dangerous variable names
	Positions map[string][]string // dangerous variable -> affected positions
	Rule      string              // rendered rule text
}

// CheckWarded verifies the (syntactic) wardedness restriction of Warded
// Datalog± that Vadalog builds on: in every rule, all “dangerous” variables
// — body variables that may only ever bind labelled nulls and that propagate
// to the head — must occur in a single body atom, the ward, which shares
// only harmless variables with the rest of the body. Programs accepted by
// this check have decidable, PTIME reasoning; the paper's algorithms are all
// warded. It reports the first violation; WardViolations returns all of
// them with per-variable detail for diagnostics-grade reporting.
func CheckWarded(p *Program) error {
	vs := WardViolations(p)
	if len(vs) == 0 {
		return nil
	}
	v := vs[0]
	return fmt.Errorf(
		"datalog: rule %d (line %d) is not warded: dangerous variables %v have no ward: %s",
		v.RuleIndex, v.Line, v.Dangerous, v.Rule)
}

// WardViolations runs the wardedness analysis and returns every unwarded
// rule with the dangerous variables and the affected positions they occur
// at. An empty slice means the program is warded.
func WardViolations(p *Program) []WardViolation {
	// Step 1: affected positions fixpoint. A position pred[i] is affected
	// if an existential variable occurs there in some head, or if a body
	// variable occurring only in affected positions occurs there in a head.
	affected := make(map[attrPos]bool)
	for _, r := range p.Rules {
		ex := make(map[string]bool)
		for _, v := range r.Existential {
			ex[v] = true
		}
		for _, h := range r.Heads {
			for i, t := range h.Args {
				if t.Kind == TVar && ex[t.Name] {
					affected[attrPos{h.Pred, i}] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			if r.IsEGD {
				continue
			}
			onlyAffected := bodyVarsOnlyInAffected(r, affected)
			for _, h := range r.Heads {
				for i, t := range h.Args {
					if t.Kind == TVar && onlyAffected[t.Name] && !affected[attrPos{h.Pred, i}] {
						affected[attrPos{h.Pred, i}] = true
						changed = true
					}
				}
			}
		}
	}

	// Step 2: per rule, find dangerous variables and check for a ward.
	var violations []WardViolation
	for ri, r := range p.Rules {
		if r.IsEGD {
			continue
		}
		harmful := bodyVarsOnlyInAffected(r, affected)
		headVars := make(map[string]bool)
		for _, h := range r.Heads {
			for _, t := range h.Args {
				if t.Kind == TVar {
					headVars[t.Name] = true
				}
			}
		}
		var dangerous []string
		for v := range harmful {
			if headVars[v] {
				dangerous = append(dangerous, v)
			}
		}
		if len(dangerous) == 0 {
			continue
		}
		sort.Strings(dangerous)
		// Some single positive body atom must contain all dangerous
		// variables and share only harmless variables with other atoms.
		ok := false
		for wi, l := range r.Body {
			if l.Kind != LAtom {
				continue
			}
			wardVars := atomVars(l.Atom)
			all := true
			for _, d := range dangerous {
				if !wardVars[d] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			shared := true
			for bi, l2 := range r.Body {
				if bi == wi || l2.Kind != LAtom {
					continue
				}
				for v := range atomVars(l2.Atom) {
					if wardVars[v] && harmful[v] {
						shared = false
						break
					}
				}
				if !shared {
					break
				}
			}
			if shared {
				ok = true
				break
			}
		}
		if !ok {
			pos := make(map[string][]string, len(dangerous))
			for _, d := range dangerous {
				for _, l := range r.Body {
					if l.Kind != LAtom {
						continue
					}
					for i, t := range l.Atom.Args {
						if t.Kind == TVar && t.Name == d && affected[attrPos{l.Atom.Pred, i}] {
							pos[d] = append(pos[d], fmt.Sprintf("%s[%d]", l.Atom.Pred, i+1))
						}
					}
				}
			}
			violations = append(violations, WardViolation{
				RuleIndex: ri,
				Line:      r.Line,
				Dangerous: dangerous,
				Positions: pos,
				Rule:      r.String(),
			})
		}
	}
	return violations
}

// bodyVarsOnlyInAffected returns the body variables of r that occur in
// positive body atoms only at affected positions.
func bodyVarsOnlyInAffected(r Rule, affected map[attrPos]bool) map[string]bool {
	seen := make(map[string]bool)  // occurs in some positive atom
	clean := make(map[string]bool) // occurs at some non-affected position
	for _, l := range r.Body {
		if l.Kind != LAtom {
			continue
		}
		for i, t := range l.Atom.Args {
			if t.Kind != TVar {
				continue
			}
			seen[t.Name] = true
			if !affected[attrPos{l.Atom.Pred, i}] {
				clean[t.Name] = true
			}
		}
	}
	out := make(map[string]bool)
	for v := range seen {
		if !clean[v] {
			out[v] = true
		}
	}
	return out
}

func atomVars(a *Atom) map[string]bool {
	out := make(map[string]bool)
	for _, t := range a.Args {
		if t.Kind == TVar {
			out[t.Name] = true
		}
	}
	return out
}
