package datalog

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string, edb *Database) *Result {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if edb == nil {
		edb = NewDatabase()
	}
	res, err := Run(p, edb, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestTransitiveClosure(t *testing.T) {
	res := run(t, `
		edge(a,b). edge(b,c). edge(c,d).
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
	`, nil)
	if got := len(res.Facts("path")); got != 6 {
		t.Fatalf("path has %d facts, want 6: %v", got, res.Facts("path"))
	}
	if !res.Has("path", Str("a"), Str("d")) {
		t.Error("missing path(a,d)")
	}
}

func TestInputDatabaseUntouched(t *testing.T) {
	edb := NewDatabase()
	edb.Add("edge", Str("a"), Str("b"))
	run(t, `path(X,Y) :- edge(X,Y).`, edb)
	if edb.Len() != 1 {
		t.Fatalf("input database was modified: %d facts", edb.Len())
	}
}

func TestStratifiedNegation(t *testing.T) {
	res := run(t, `
		node(a). node(b). node(c).
		covered(a). covered(b).
		uncovered(X) :- node(X), not covered(X).
	`, nil)
	facts := res.Facts("uncovered")
	if len(facts) != 1 || facts[0][0].StrVal() != "c" {
		t.Fatalf("uncovered = %v", facts)
	}
}

func TestNegationThroughRecursionRejected(t *testing.T) {
	p := MustParse(`
		p(X) :- q(X), not p(X).
		q(a).
	`)
	if _, err := Run(p, NewDatabase(), nil); err == nil ||
		!strings.Contains(err.Error(), "not stratified") {
		t.Fatalf("err = %v, want stratification error", err)
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	res := run(t, `
		w(i1, 30). w(i2, 60).
		risk(I,R) :- w(I,W), R = 1 / W.
		risky(I) :- risk(I,R), R > 0.02.
	`, nil)
	if !res.Has("risky", Str("i1")) || res.Has("risky", Str("i2")) {
		t.Fatalf("risky = %v", res.Facts("risky"))
	}
}

func TestDivisionByZero(t *testing.T) {
	p := MustParse(`
		w(i1, 0).
		risk(I,R) :- w(I,W), R = 1 / W.
	`)
	if _, err := Run(p, NewDatabase(), nil); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
}

func TestAssignAsEqualityCheck(t *testing.T) {
	// X = expr where X is already bound acts as an equality filter.
	res := run(t, `
		pair(1,2). pair(2,2).
		double(X,Y) :- pair(X,Y), Y = X * 2.
	`, nil)
	facts := res.Facts("double")
	if len(facts) != 1 || facts[0][0].NumVal() != 1 {
		t.Fatalf("double = %v", facts)
	}
}

func TestExistentialInventsNull(t *testing.T) {
	res := run(t, `
		emp(alice).
		dept(E,D) :- emp(E).
	`, nil)
	facts := res.Facts("dept")
	if len(facts) != 1 {
		t.Fatalf("dept = %v", facts)
	}
	if facts[0][1].Kind() != KNull {
		t.Fatalf("existential position is %v, want a labelled null", facts[0][1])
	}
}

func TestSkolemReuseAcrossDerivations(t *testing.T) {
	// The same frontier must reuse the same invented null even when the
	// rule fires through different derivation paths.
	res := run(t, `
		emp1(alice). emp2(alice).
		e(X) :- emp1(X).
		e(X) :- emp2(X).
		dept(E,D) :- e(E).
	`, nil)
	if got := len(res.Facts("dept")); got != 1 {
		t.Fatalf("dept has %d facts, want 1 (skolem reuse): %v", got, res.Facts("dept"))
	}
}

func TestExistentialDistinctFrontiersDistinctNulls(t *testing.T) {
	res := run(t, `
		emp(alice). emp(bob).
		dept(E,D) :- emp(E).
	`, nil)
	facts := res.Facts("dept")
	if len(facts) != 2 {
		t.Fatalf("dept = %v", facts)
	}
	if Equal(facts[0][1], facts[1][1]) {
		t.Fatal("different frontiers share a labelled null")
	}
}

func TestExistentialJoinsBackRestrictedChase(t *testing.T) {
	// A classic chase pattern: the invented null participates in joins.
	res := run(t, `
		person(alice).
		hasParent(X,Y) :- person(X).
		ancestor(X,Y) :- hasParent(X,Y).
	`, nil)
	if len(res.Facts("ancestor")) != 1 {
		t.Fatalf("ancestor = %v", res.Facts("ancestor"))
	}
}

func TestMSumGroupBy(t *testing.T) {
	res := run(t, `
		val(m1, i1, 10). val(m1, i2, 20). val(m2, i3, 5).
		total(M,S) :- val(M,I,W), S = msum(W,[I]).
	`, nil)
	want := map[string]float64{"m1": 30, "m2": 5}
	facts := res.Facts("total")
	if len(facts) != 2 {
		t.Fatalf("total = %v", facts)
	}
	for _, f := range facts {
		if want[f[0].StrVal()] != f[1].NumVal() {
			t.Errorf("total(%s) = %g, want %g", f[0].StrVal(), f[1].NumVal(), want[f[0].StrVal()])
		}
	}
}

func TestMonotonicContributorDedup(t *testing.T) {
	// The same contributor reached through two facts counts once, with the
	// maximal contribution (monotonic aggregation semantics, Section 4.3).
	res := run(t, `
		val(m1, i1, 10).
		val2(m1, i1, 25).
		src(M,I,W) :- val(M,I,W).
		src(M,I,W) :- val2(M,I,W).
		total(M,S) :- src(M,I,W), S = msum(W,[I]).
		cnt(M,C) :- src(M,I,W), C = mcount([I]).
	`, nil)
	if got := res.Facts("total"); len(got) != 1 || got[0][1].NumVal() != 25 {
		t.Fatalf("total = %v, want 25", got)
	}
	if got := res.Facts("cnt"); len(got) != 1 || got[0][1].NumVal() != 1 {
		t.Fatalf("cnt = %v, want 1", got)
	}
}

func TestMProd(t *testing.T) {
	res := run(t, `
		r(c, e1, 0.9). r(c, e2, 0.5).
		surv(C,P) :- r(C,E,X), P = mprod(X,[E]).
	`, nil)
	got := res.Facts("surv")
	if len(got) != 1 || got[0][1].NumVal() != 0.45 {
		t.Fatalf("surv = %v, want 0.45", got)
	}
}

func TestMUnion(t *testing.T) {
	res := run(t, `
		val(m1, i1, a). val(m1, i2, b). val(m1, i3, a).
		set(M,S) :- val(M,I,V), S = munion(V,[I]).
		haz(M) :- set(M,S), a in S.
	`, nil)
	got := res.Facts("set")
	if len(got) != 1 {
		t.Fatalf("set = %v", got)
	}
	if len(got[0][1].Elems()) != 2 {
		t.Fatalf("set value = %v, want {a,b}", got[0][1])
	}
	if !res.Has("haz", Str("m1")) {
		t.Error("membership over munion result failed")
	}
}

// The company-control example of Section 4.4: X controls Y directly with
// >50% ownership, or through the companies it already controls.
func TestRecursiveAggregateCondition(t *testing.T) {
	res := run(t, `
		own(a, b, 0.6).
		own(a, e, 0.7).
		own(b, c, 0.3).
		own(e, c, 0.3).
		own(c, d, 0.9).
		rel(X,Y) :- own(X,Y,W), W > 0.5.
		rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
	`, nil)
	// a controls b and e directly; a controls c because b and e, both
	// controlled by a, jointly own 0.6 of c; a controls d through c; b
	// does not control c (only 0.3).
	want := [][2]string{{"a", "b"}, {"a", "e"}, {"a", "c"}, {"a", "d"}, {"c", "d"}}
	for _, w := range want {
		if !res.Has("rel", Str(w[0]), Str(w[1])) {
			t.Errorf("missing rel(%s,%s); facts: %v", w[0], w[1], res.Facts("rel"))
		}
	}
	if res.Has("rel", Str("b"), Str("c")) {
		t.Error("spurious rel(b,c)")
	}
	if got := len(res.Facts("rel")); got != len(want) {
		t.Errorf("rel has %d facts, want %d: %v", got, len(want), res.Facts("rel"))
	}
}

// Recursion through a msum *condition* must consider joint ownership of the
// controlled set: a owns 0.4 of c directly, plus 0.2 through b.
func TestJointControlAccumulates(t *testing.T) {
	res := run(t, `
		own(a, b, 0.6).
		own(a, c, 0.4).
		own(b, c, 0.2).
		rel(X,Y) :- own(X,Y,W), W > 0.5.
		rel(X,Y) :- ctr(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
		ctr(X,X) :- own(X,Y,W).
		ctr(X,Y) :- rel(X,Y).
	`, nil)
	if !res.Has("rel", Str("a"), Str("c")) {
		t.Fatalf("joint control not derived; rel = %v", res.Facts("rel"))
	}
}

func TestHeadBindingAggregateThroughRecursionRejected(t *testing.T) {
	p := MustParse(`
		t(X,S) :- t(Y,S1), e(Y,X,W), S = msum(W,[Y]).
		e(a,b,1).
	`)
	if _, err := Run(p, NewDatabase(), nil); err == nil ||
		!strings.Contains(err.Error(), "not stratified") {
		t.Fatalf("err = %v, want stratification error", err)
	}
}

func TestEGDUnifiesNulls(t *testing.T) {
	// Two invented department nulls for the same employee are merged by
	// the EGD, collapsing the two dept facts into one.
	res := run(t, `
		emp1(alice). emp2(alice).
		dept1(E,D) :- emp1(E).
		dept2(E,D) :- emp2(E).
		dept(E,D) :- dept1(E,D).
		dept(E,D) :- dept2(E,D).
		D1 = D2 :- dept(E,D1), dept(E,D2).
	`, nil)
	if got := len(res.Facts("dept")); got != 1 {
		t.Fatalf("dept has %d facts after EGD unification, want 1: %v", got, res.Facts("dept"))
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
}

func TestEGDUnifiesNullWithConstant(t *testing.T) {
	res := run(t, `
		emp(alice).
		known(alice, sales).
		dept(E,D) :- emp(E).
		dept(E,D) :- known(E,D).
		D1 = D2 :- dept(E,D1), dept(E,D2).
	`, nil)
	facts := res.Facts("dept")
	if len(facts) != 1 || facts[0][1].StrVal() != "sales" {
		t.Fatalf("dept = %v, want alice->sales only", facts)
	}
}

func TestEGDViolationReported(t *testing.T) {
	// Algorithm 1 Rule 4: one category per attribute; conflicting constants
	// surface as violations rather than failing the run.
	res := run(t, `
		cat(ig, area, quasi).
		cat(ig, area, identifier).
		C1 = C2 :- cat(M,A,C1), cat(M,A,C2).
	`, nil)
	if len(res.Violations) == 0 {
		t.Fatal("no violations reported")
	}
	v := res.Violations[0]
	got := map[string]bool{v.A.StrVal(): true, v.B.StrVal(): true}
	if !got["quasi"] || !got["identifier"] {
		t.Fatalf("violation = %v", v)
	}
	if !strings.Contains(v.String(), "EGD violation") {
		t.Errorf("Violation.String() = %q", v.String())
	}
}

func TestRunawayChaseGuarded(t *testing.T) {
	// Unguarded successor generation runs forever without the fact cap.
	p := MustParse(`
		n(zero).
		n(Y) :- n(X), succ(X,Y).
		succ(X,Y) :- n(X).
	`)
	_, err := Run(p, NewDatabase(), &Options{MaxFacts: 500})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want fact-cap error", err)
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	db.Add("p", Str("a"))
	db.Add("p", Str("a")) // dup
	db.Add("q", Num(1))
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if got := db.Predicates(); len(got) != 2 || got[0] != "p" || got[1] != "q" {
		t.Fatalf("Predicates = %v", got)
	}
	if !db.Has("p", Str("a")) || db.Has("p", Str("b")) || db.Has("r", Str("a")) {
		t.Fatal("Has misbehaves")
	}
	if db.Facts("r") != nil {
		t.Fatal("Facts of unknown predicate should be nil")
	}
}

func TestFactsSorted(t *testing.T) {
	db := NewDatabase()
	db.Add("p", Str("b"))
	db.Add("p", Str("a"))
	db.Add("p", Num(3))
	facts := db.Facts("p")
	if facts[0][0].NumVal() != 3 || facts[1][0].StrVal() != "a" || facts[2][0].StrVal() != "b" {
		t.Fatalf("Facts not sorted: %v", facts)
	}
}

// Semi-naive evaluation must agree with a brute-force model check: every
// rule is satisfied by the result, on a chain graph deep enough to need many
// rounds.
func TestDeepRecursionModelCheck(t *testing.T) {
	edb := NewDatabase()
	const n = 60
	for i := 0; i < n; i++ {
		edb.Add("edge", Num(float64(i)), Num(float64(i+1)))
	}
	res := run(t, `
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
	`, edb)
	want := n * (n + 1) / 2
	if got := len(res.Facts("path")); got != want {
		t.Fatalf("path has %d facts, want %d", got, want)
	}
	// Model check rule 2: path(X,Y), edge(Y,Z) => path(X,Z).
	for _, p := range res.Facts("path") {
		for _, e := range res.Facts("edge") {
			if Equal(p[1], e[0]) && !res.Has("path", p[0], e[1]) {
				t.Fatalf("model check failed at path%v edge%v", p, e)
			}
		}
	}
}

func TestMultipleHeadAtoms(t *testing.T) {
	res := run(t, `
		inp(a).
		left(X), right(X,Y) :- inp(X).
	`, nil)
	if len(res.Facts("left")) != 1 || len(res.Facts("right")) != 1 {
		t.Fatalf("left=%v right=%v", res.Facts("left"), res.Facts("right"))
	}
	if res.Facts("right")[0][1].Kind() != KNull {
		t.Fatal("existential in second head atom not invented")
	}
}

func TestInComparison(t *testing.T) {
	res := run(t, `
		val(m, i1, x). val(m, i2, y).
		set(M,S) :- val(M,I,V), S = munion(V,[I]).
		hasx(M) :- set(M,S), x in S.
		hasz(M) :- set(M,S), z in S.
	`, nil)
	if !res.Has("hasx", Str("m")) {
		t.Error("x in S failed")
	}
	if res.Has("hasz", Str("m")) {
		t.Error("z in S spuriously true")
	}
}

func TestOrderedComparisonOnListErrors(t *testing.T) {
	p := MustParse(`
		val(m, i1, x).
		set(M,S) :- val(M,I,V), S = munion(V,[I]).
		bad(M) :- set(M,S), S < 3.
	`)
	if _, err := Run(p, NewDatabase(), nil); err == nil ||
		!strings.Contains(err.Error(), "list") {
		t.Fatalf("err = %v, want list comparison error", err)
	}
}

func TestTraceOutput(t *testing.T) {
	p := MustParse(`
		edge(a,b). edge(b,c). edge(c,d).
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
	`)
	var trace strings.Builder
	if _, err := Run(p, NewDatabase(), &Options{Trace: &trace}); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	if !strings.Contains(out, "seed") || !strings.Contains(out, "round") {
		t.Fatalf("trace = %q", out)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	res := run(t, `
		v(4, -3).
		r1(X) :- v(A,B), X = abs(B).
		r2(X) :- v(A,B), X = sqrt(A).
		r3(X) :- v(A,B), X = min(A, B, 0 - 7).
		r4(X) :- v(A,B), X = max(A, B).
		r5(X) :- v(A,B), X = pow(A, 2).
		r6(X) :- v(A,B), X = floor(A / 3) + ceil(A / 3).
		r7(X) :- v(A,B), X = concat("n=", A, "!").
		r8(X) :- v(A,B), X = len(concat("abc", "de")).
	`, nil)
	wantNum := map[string]float64{"r1": 3, "r2": 2, "r3": -7, "r4": 4, "r5": 16, "r6": 3, "r8": 5}
	for pred, want := range wantNum {
		facts := res.Facts(pred)
		if len(facts) != 1 || facts[0][0].NumVal() != want {
			t.Errorf("%s = %v, want %g", pred, facts, want)
		}
	}
	if got := res.Facts("r7"); len(got) != 1 || got[0][0].StrVal() != "n=4!" {
		t.Errorf("r7 = %v", got)
	}
}

func TestBuiltinErrors(t *testing.T) {
	if _, err := Parse(`f(X) :- g(A), X = nosuchfn(A).`); err == nil ||
		!strings.Contains(err.Error(), "unknown function") {
		t.Errorf("unknown function: %v", err)
	}
	if _, err := Parse(`f(X) :- g(A), X = abs(A, A).`); err == nil ||
		!strings.Contains(err.Error(), "arguments") {
		t.Errorf("bad arity: %v", err)
	}
	p := MustParse(`
		g(-1).
		f(X) :- g(A), X = sqrt(A).
	`)
	if _, err := Run(p, NewDatabase(), nil); err == nil ||
		!strings.Contains(err.Error(), "sqrt of negative") {
		t.Errorf("sqrt domain: %v", err)
	}
	p2 := MustParse(`
		g(x).
		f(X) :- g(A), X = abs(A).
	`)
	if _, err := Run(p2, NewDatabase(), nil); err == nil {
		t.Error("abs of string accepted")
	}
}

func TestBuiltinInComparisonAndSafety(t *testing.T) {
	res := run(t, `
		w(i1, 30). w(i2, 3).
		big(I) :- w(I,X), abs(X - 10) > 15.
	`, nil)
	if !res.Has("big", Str("i1")) || res.Has("big", Str("i2")) {
		t.Fatalf("big = %v", res.Facts("big"))
	}
	// Unsafe variable inside a call argument is rejected.
	if _, err := Parse(`f(X) :- g(A), X = abs(B).`); err == nil ||
		!strings.Contains(err.Error(), "unsafe") {
		t.Errorf("unsafe call arg: %v", err)
	}
}
