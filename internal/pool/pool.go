// Package pool provides the bounded fork-join worker pool behind the
// parallel stages of the incremental risk-assessment layer: group-index
// construction, dirty-group maintenance and per-group risk scoring all fan
// independent index ranges out across cores through Run.
//
// Determinism is load-bearing for the anonymization cycle (journal replay
// reproduces a run bit-for-bit), so the pool's contract is designed for it:
// the input range is split into contiguous chunks whose boundaries depend
// only on the range length and the worker count, every chunk writes to
// caller-provided disjoint state, and no pool-level state is shared between
// chunks. A caller whose chunk function is a pure per-index computation gets
// results independent of the worker count — including the sequential
// fallback.
//
// The pool is charged against the goroutine budget of the resource governor
// carried by the context (PR 3): the extra workers — every goroutine beyond
// the calling one — are reserved before they are spawned and released when
// the join completes. When the reservation is refused the pool degrades to
// sequential execution in the calling goroutine instead of failing: scoring
// work is always correct single-threaded, so goroutine back-pressure costs
// latency, never progress. Memory back-pressure keeps its PR 3 semantics —
// the pool reserves no memory; callers charge their own buffers.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"vadasa/internal/govern"
)

// chunkTarget is the fixed ChunkBounds chunk size: small enough to balance
// load across workers, large enough that per-chunk bookkeeping never shows
// up in profiles.
const chunkTarget = 2048

// ChunkBounds splits [0, n) into contiguous [lo, hi) ranges of a fixed
// target size. The boundaries depend only on n — not on GOMAXPROCS or the
// governor — so callers that accumulate per-chunk results and concatenate
// them in chunk order get output independent of the worker count.
func ChunkBounds(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	out := make([][2]int, 0, (n+chunkTarget-1)/chunkTarget)
	for lo := 0; lo < n; lo += chunkTarget {
		hi := lo + chunkTarget
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// Run partitions [0, n) into contiguous chunks and executes fn on each,
// using up to GOMAXPROCS goroutines (the caller's included). fn must write
// only to state disjoint per index range. The first error by chunk order is
// returned, so error identity does not depend on goroutine scheduling; a
// pre-cancelled context returns its error before any chunk runs.
func Run(ctx context.Context, n int, fn func(lo, hi int) error) error {
	return RunWorkers(ctx, 0, n, fn)
}

// RunWorkers is Run with an explicit worker-count cap; workers <= 0 means
// GOMAXPROCS. Tests use it to force multi-goroutine execution on small
// machines; production callers use Run.
func RunWorkers(ctx context.Context, workers, n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	gov := govern.From(ctx)
	if workers > 1 {
		// The calling goroutine works too, so only workers-1 are new.
		if err := gov.Reserve(govern.Goroutines, int64(workers-1)); err != nil {
			workers = 1 // budget saturated: degrade to sequential
		} else {
			defer gov.Release(govern.Goroutines, int64(workers-1))
		}
	}
	if workers == 1 {
		return fn(0, n)
	}

	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	errs[0] = fn(0, chunk)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach executes fn(i) for every i in [0, n) on up to workers goroutines
// (the caller's included; workers <= 0 means GOMAXPROCS), pulling items off
// a shared queue instead of pre-splitting ranges. It exists for workloads
// Run's contiguous chunking serves badly: items that block on I/O for
// wildly different times — the distributed shard supervisor dispatching
// lease-fenced tasks to remote workers is the motivating caller. fn must
// write only to per-index state.
//
// The determinism contract matches Run's: which goroutine executes an item
// carries no information (per-index state, pure fn), and the returned error
// is the lowest-index one, so error identity does not depend on scheduling.
// Every item is attempted even after a failure — remote dispatch has no
// useful way to "half cancel", and callers that want early exit cancel ctx:
// once ctx is done the remaining queue items are not dispatched, their
// slots settle to ctx.Err(), and ForEach returns as soon as the in-flight
// fn calls do. The extra goroutines are charged to the context governor's
// goroutine budget exactly like Run; a refused reservation degrades to
// sequential execution in the calling goroutine.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	gov := govern.From(ctx)
	if workers > 1 {
		// The calling goroutine works too, so only workers-1 are new.
		if err := gov.Reserve(govern.Goroutines, int64(workers-1)); err != nil {
			workers = 1 // budget saturated: degrade to sequential
		} else {
			defer gov.Release(govern.Goroutines, int64(workers-1))
		}
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		work := func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Poll per item, not per loop entry: a long queue behind a
				// cancelled context settles promptly instead of dispatching
				// every remaining item into fn.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
