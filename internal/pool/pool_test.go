package pool

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"vadasa/internal/govern"
)

func TestRunCoversRangeDisjointly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for _, n := range []int{0, 1, 5, 100, 4097} {
			seen := make([]int, n)
			err := RunWorkers(context.Background(), workers, n, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunReturnsLowestChunkError(t *testing.T) {
	boom := func(at int) func(lo, hi int) error {
		return func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if i >= at {
					return fmt.Errorf("bad index %d", i)
				}
			}
			return nil
		}
	}
	for _, workers := range []int{1, 4} {
		err := RunWorkers(context.Background(), workers, 1000, boom(500))
		if err == nil || err.Error() != "bad index 500" {
			t.Fatalf("workers=%d: got %v, want bad index 500", workers, err)
		}
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Run(ctx, 10, func(lo, hi int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("chunk ran despite cancelled context")
	}
}

// A saturated goroutine budget degrades to sequential execution instead of
// failing, and a roomy budget is released when the join completes.
func TestRunGoroutineBudget(t *testing.T) {
	tight := govern.New("tight", govern.Limits{MaxGoroutines: 1})
	ctx := govern.With(context.Background(), tight)
	visited := 0
	if err := RunWorkers(ctx, 4, 100, func(lo, hi int) error {
		visited += hi - lo // sequential: no data race
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited != 100 {
		t.Fatalf("visited %d of 100 under tight budget", visited)
	}
	if used := tight.Used(govern.Goroutines); used != 0 {
		t.Fatalf("tight governor still holds %d goroutines", used)
	}

	roomy := govern.New("roomy", govern.Limits{MaxGoroutines: 16})
	ctx = govern.With(context.Background(), roomy)
	out := make([]int, 1000)
	if err := RunWorkers(ctx, 4, len(out), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = i
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if used := roomy.Used(govern.Goroutines); used != 0 {
		t.Fatalf("roomy governor still holds %d goroutines after join", used)
	}
}

func TestChunkBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2047, 2048, 2049, 10000} {
		chunks := ChunkBounds(n)
		next := 0
		for _, c := range chunks {
			if c[0] != next || c[1] <= c[0] {
				t.Fatalf("n=%d: bad chunk %v at expected lo %d", n, c, next)
			}
			next = c[1]
		}
		if next != n {
			t.Fatalf("n=%d: chunks cover up to %d", n, next)
		}
	}
}
