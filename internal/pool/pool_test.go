package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vadasa/internal/govern"
)

func TestRunCoversRangeDisjointly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for _, n := range []int{0, 1, 5, 100, 4097} {
			seen := make([]int, n)
			err := RunWorkers(context.Background(), workers, n, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunReturnsLowestChunkError(t *testing.T) {
	boom := func(at int) func(lo, hi int) error {
		return func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if i >= at {
					return fmt.Errorf("bad index %d", i)
				}
			}
			return nil
		}
	}
	for _, workers := range []int{1, 4} {
		err := RunWorkers(context.Background(), workers, 1000, boom(500))
		if err == nil || err.Error() != "bad index 500" {
			t.Fatalf("workers=%d: got %v, want bad index 500", workers, err)
		}
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Run(ctx, 10, func(lo, hi int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("chunk ran despite cancelled context")
	}
}

// A saturated goroutine budget degrades to sequential execution instead of
// failing, and a roomy budget is released when the join completes.
func TestRunGoroutineBudget(t *testing.T) {
	tight := govern.New("tight", govern.Limits{MaxGoroutines: 1})
	ctx := govern.With(context.Background(), tight)
	visited := 0
	if err := RunWorkers(ctx, 4, 100, func(lo, hi int) error {
		visited += hi - lo // sequential: no data race
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited != 100 {
		t.Fatalf("visited %d of 100 under tight budget", visited)
	}
	if used := tight.Used(govern.Goroutines); used != 0 {
		t.Fatalf("tight governor still holds %d goroutines", used)
	}

	roomy := govern.New("roomy", govern.Limits{MaxGoroutines: 16})
	ctx = govern.With(context.Background(), roomy)
	out := make([]int, 1000)
	if err := RunWorkers(ctx, 4, len(out), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = i
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if used := roomy.Used(govern.Goroutines); used != 0 {
		t.Fatalf("roomy governor still holds %d goroutines after join", used)
	}
}

func TestChunkBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2047, 2048, 2049, 10000} {
		chunks := ChunkBounds(n)
		next := 0
		for _, c := range chunks {
			if c[0] != next || c[1] <= c[0] {
				t.Fatalf("n=%d: bad chunk %v at expected lo %d", n, c, next)
			}
			next = c[1]
		}
		if next != n {
			t.Fatalf("n=%d: chunks cover up to %d", n, next)
		}
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 500)
	if err := ForEach(context.Background(), 4, len(out), func(i int) error {
		out[i] = i * 3
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Errors at many indexes: the returned error must be the lowest-index
	// one regardless of scheduling, and every item is still attempted.
	var attempted atomic.Int64
	errAt := func(i int) error { return fmt.Errorf("item %d", i) }
	for trial := 0; trial < 20; trial++ {
		attempted.Store(0)
		err := ForEach(context.Background(), 8, 100, func(i int) error {
			attempted.Add(1)
			if i == 7 || i == 63 || i == 91 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7" {
			t.Fatalf("trial %d: err = %v, want item 7", trial, err)
		}
		if n := attempted.Load(); n != 100 {
			t.Fatalf("trial %d: attempted %d of 100", trial, n)
		}
	}
}

func TestForEachGovernorDegrade(t *testing.T) {
	tight := govern.New("tight", govern.Limits{MaxGoroutines: 1})
	tight.Reserve(govern.Goroutines, 1) // saturate
	ctx := govern.With(context.Background(), tight)
	var visited atomic.Int64
	if err := ForEach(ctx, 4, 50, func(i int) error {
		visited.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 50 {
		t.Fatalf("visited %d of 50 under tight budget", visited.Load())
	}
	if used := tight.Used(govern.Goroutines); used != 1 {
		t.Fatalf("tight governor holds %d goroutines, want the pre-reserved 1", used)
	}

	roomy := govern.New("roomy", govern.Limits{MaxGoroutines: 16})
	if err := ForEach(govern.With(context.Background(), roomy), 4, 50, func(i int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if used := roomy.Used(govern.Goroutines); used != 0 {
		t.Fatalf("roomy governor still holds %d goroutines after join", used)
	}
}

func TestForEachCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 10, func(int) error {
		t.Fatal("fn called with pre-cancelled context")
		return nil
	})
	if err == nil {
		t.Fatal("want context error")
	}
}

// Cancelling the context mid-run must settle ForEach promptly — remaining
// queue items are not dispatched into fn, their error slots carry the
// context error — and must leak no worker goroutines. This mirrors the
// jobs-layer backoff contract: cancellation is an immediate stop, not a
// drain of the whole queue.
func TestForEachCancelMidRunSettlesPromptly(t *testing.T) {
	defer func(n int) {
		// Workers are joined before ForEach returns; give the runtime a
		// moment to retire them, then require the goroutine count back at
		// its baseline.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > n && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > n {
			t.Fatalf("goroutines leaked: %d running, baseline %d", g, n)
		}
	}(runtime.NumGoroutine())

	const n = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started, dispatched atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 4, n, func(i int) error {
			dispatched.Add(1)
			if started.Add(1) <= 4 {
				<-release // first items block until after the cancel
			}
			return nil
		})
	}()
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ForEach did not settle after cancellation")
	}
	// The queue behind the cancellation must have been skipped, not drained
	// through fn: with only 4 in-flight items at cancel time, dispatch
	// counts anywhere near n mean the cancel was ignored.
	if d := dispatched.Load(); d > n/10 {
		t.Fatalf("dispatched %d of %d items after cancellation", d, n)
	}
}

// The sequential (degraded) path honours the same contract.
func TestForEachCancelSequentialPath(t *testing.T) {
	tight := govern.New("tight", govern.Limits{MaxGoroutines: 1})
	tight.Reserve(govern.Goroutines, 1)
	ctx, cancel := context.WithCancel(govern.With(context.Background(), tight))
	var calls int
	err := ForEach(ctx, 4, 1000, func(i int) error {
		calls++
		if calls == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times after cancel, want 3", calls)
	}
}
