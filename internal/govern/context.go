package govern

import "context"

type ctxKey struct{}

// With returns a context carrying g. Layers that allocate (datalog
// evaluation, SUDA subset pools, anonymization clones) look the
// governor up with From and charge it; a context without one runs
// ungoverned, preserving the behaviour of callers that opt out.
func With(ctx context.Context, g *Governor) context.Context {
	return context.WithValue(ctx, ctxKey{}, g)
}

// From returns the governor carried by ctx, or nil if none. All
// Governor methods are nil-safe no-ops, so callers may charge the
// result without checking.
func From(ctx context.Context) *Governor {
	g, _ := ctx.Value(ctxKey{}).(*Governor)
	return g
}
