//go:build linux || darwin

package govern

import (
	"errors"
	"syscall"
)

var errUnsupported = errors.New("govern: disk free measurement unsupported on this platform")

// DiskFree reports the free bytes available to unprivileged writers on
// the filesystem holding dir.
func DiskFree(dir string) (int64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, err
	}
	return int64(st.Bavail) * int64(st.Bsize), nil
}
