package govern

import (
	"context"
	"errors"
	"sync"
	"syscall"
	"testing"
)

func TestReserveRelease(t *testing.T) {
	g := New("root", Limits{MaxBytes: 100})
	if err := g.Reserve(Memory, 60); err != nil {
		t.Fatalf("reserve 60: %v", err)
	}
	if err := g.Reserve(Memory, 41); err == nil {
		t.Fatal("reserve over budget succeeded")
	}
	g.Release(Memory, 30)
	if err := g.Reserve(Memory, 41); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	if got := g.Used(Memory); got != 71 {
		t.Fatalf("used = %d, want 71", got)
	}
}

func TestErrBudgetExceededFields(t *testing.T) {
	g := New("server", Limits{MaxFacts: 10})
	g.Reserve(Facts, 8)
	err := g.Reserve(Facts, 5)
	var ebe *ErrBudgetExceeded
	if !errors.As(err, &ebe) {
		t.Fatalf("error %v is not *ErrBudgetExceeded", err)
	}
	if ebe.Resource != Facts || ebe.Scope != "server" || ebe.Requested != 5 || ebe.Used != 8 || ebe.Budget != 10 {
		t.Fatalf("unexpected fields: %+v", ebe)
	}
}

// A child reservation is charged to every ancestor, an ancestor's
// budget binds the child, and a failed reservation rolls back cleanly.
func TestHierarchy(t *testing.T) {
	root := New("server", Limits{MaxBytes: 100})
	job := root.Child("job", Limits{})
	eval := job.Child("evaluation", Limits{MaxBytes: 200})

	if err := eval.Reserve(Memory, 50); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if got := root.Used(Memory); got != 50 {
		t.Fatalf("root used = %d, want 50", got)
	}
	// Within eval's own 200 but over root's remaining 50: root trips.
	err := eval.Reserve(Memory, 60)
	var ebe *ErrBudgetExceeded
	if !errors.As(err, &ebe) || ebe.Scope != "server" {
		t.Fatalf("want server-scope budget error, got %v", err)
	}
	// Rollback: eval must not have kept its local charge.
	if got := eval.Used(Memory); got != 50 {
		t.Fatalf("eval used after rollback = %d, want 50", got)
	}
	// Over eval's own budget: eval trips locally, root untouched.
	err = eval.Reserve(Memory, 151)
	if !errors.As(err, &ebe) || ebe.Scope != "evaluation" {
		t.Fatalf("want evaluation-scope budget error, got %v", err)
	}
	if got := root.Used(Memory); got != 50 {
		t.Fatalf("root used = %d, want 50", got)
	}
}

// Close returns a scope's whole footprint to its ancestors.
func TestCloseReleasesAll(t *testing.T) {
	root := New("server", Limits{MaxBytes: 100, MaxGoroutines: 4})
	job := root.Child("job", Limits{})
	job.Reserve(Memory, 70)
	job.Reserve(Goroutines, 3)
	job.Close()
	if got := root.Used(Memory); got != 0 {
		t.Fatalf("root memory after close = %d, want 0", got)
	}
	if got := root.Used(Goroutines); got != 0 {
		t.Fatalf("root goroutines after close = %d, want 0", got)
	}
	if err := job.Reserve(Memory, 1); err == nil {
		t.Fatal("reserve on closed scope succeeded")
	}
}

func TestErrSaturation(t *testing.T) {
	root := New("server", Limits{MaxBytes: 10})
	child := root.Child("request", Limits{})
	if err := child.Err(); err != nil {
		t.Fatalf("unsaturated Err = %v", err)
	}
	child.Reserve(Memory, 10)
	var ebe *ErrBudgetExceeded
	if err := child.Err(); !errors.As(err, &ebe) || ebe.Resource != Memory {
		t.Fatalf("saturated Err = %v, want memory budget error", err)
	}
	child.Release(Memory, 1)
	if err := child.Err(); err != nil {
		t.Fatalf("Err after release = %v", err)
	}
}

func TestCheckDisk(t *testing.T) {
	free := int64(1000)
	g := New("server", Limits{
		DiskDir:      "/journal",
		DiskHeadroom: 500,
		DiskFree:     func(dir string) (int64, error) { return free, nil },
	})
	if err := g.CheckDisk(); err != nil {
		t.Fatalf("plenty of space: %v", err)
	}
	free = 100
	err := g.CheckDisk()
	var ebe *ErrBudgetExceeded
	if !errors.As(err, &ebe) || ebe.Resource != Disk {
		t.Fatalf("want disk budget error, got %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("disk error %v does not match syscall.ENOSPC", err)
	}
	// The violation surfaces through children and through Err too.
	if err := g.Child("job", Limits{}).Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("child Err = %v, want ENOSPC", err)
	}
}

func TestNilGovernorIsNoop(t *testing.T) {
	var g *Governor
	if err := g.Reserve(Memory, 1<<40); err != nil {
		t.Fatalf("nil reserve: %v", err)
	}
	g.Release(Memory, 1)
	g.Close()
	if got := g.Used(Memory); got != 0 {
		t.Fatalf("nil used = %d", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if g := From(context.Background()); g != nil {
		t.Fatalf("empty context carries %v", g)
	}
	g := New("server", Limits{})
	ctx := With(context.Background(), g)
	if got := From(ctx); got != g {
		t.Fatalf("From = %p, want %p", got, g)
	}
}

// Concurrent reserve/release across the hierarchy must be race-clean
// and never drive any counter negative.
func TestConcurrentReserveRelease(t *testing.T) {
	root := New("server", Limits{MaxBytes: 1 << 30})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := root.Child("worker", Limits{MaxBytes: 1 << 20})
			for j := 0; j < 500; j++ {
				if err := child.Reserve(Memory, 128); err == nil {
					child.Release(Memory, 128)
				}
			}
			child.Close()
		}()
	}
	wg.Wait()
	if got := root.Used(Memory); got != 0 {
		t.Fatalf("root used after workers done = %d, want 0", got)
	}
}

func TestStats(t *testing.T) {
	root := New("server", Limits{MaxBytes: 1 << 20, MaxGoroutines: 8})
	child := root.Child("job", Limits{})
	if err := child.Reserve(Memory, 4096); err != nil {
		t.Fatal(err)
	}
	if err := child.Reserve(Goroutines, 3); err != nil {
		t.Fatal(err)
	}
	got := root.Stats()
	if got.Scope != "server" || got.Memory != 4096 || got.Goroutines != 3 || got.Facts != 0 {
		t.Fatalf("root stats = %+v", got)
	}
	child.Close()
	if got := root.Stats(); got.Memory != 0 || got.Goroutines != 0 {
		t.Fatalf("root stats after child close = %+v", got)
	}
	var nilGov *Governor
	if got := nilGov.Stats(); got != (Usage{}) {
		t.Fatalf("nil governor stats = %+v", got)
	}
}
