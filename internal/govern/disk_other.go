//go:build !linux && !darwin

package govern

import "errors"

var errUnsupported = errors.New("govern: disk free measurement unsupported on this platform")

// DiskFree is unsupported here; headroom checks without an injected
// Limits.DiskFree are skipped rather than failing work.
func DiskFree(dir string) (int64, error) {
	return 0, errUnsupported
}
