// Package govern implements a hierarchical resource governor for the
// Vada-SA pipeline. A Governor tracks estimated resource consumption
// (bytes, facts, goroutines, journal-directory disk headroom) against
// configurable budgets, arranged as a tree: the server holds the root,
// each job or HTTP request runs under a child, and each reasoning or
// anonymization evaluation under a grandchild. A Reserve on a child is
// charged against every ancestor, so one runaway evaluation cannot
// starve the process even when its own scope is unlimited.
//
// The zero budget means "unlimited": a Governor with empty Limits is a
// pure accounting node, useful as an intermediate scope whose Close
// releases everything it ever reserved in one step.
//
// Governors are safe for concurrent use. Budgets are advisory
// estimates, not allocator hooks: callers reserve before allocating
// and release when the memory becomes unreachable, so the tracked
// numbers bound the high-water mark rather than live heap bytes.
package govern

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
)

// Resource identifies which budget a reservation draws from.
type Resource string

const (
	// Memory is estimated heap bytes (datasets, fact databases,
	// subset pools, checkpoint buffers).
	Memory Resource = "memory"
	// Facts is derived-fact count in a reasoning evaluation.
	Facts Resource = "facts"
	// Goroutines is worker goroutines spawned by parallel stages.
	Goroutines Resource = "goroutines"
	// Disk is free-space headroom in the journal directory. Disk is
	// checked, not reserved: see (*Governor).CheckDisk.
	Disk Resource = "disk"
)

// ErrBudgetExceeded reports a reservation that would overrun a budget,
// carrying which resource tripped, the scope (governor name) that
// enforced it, and the numbers involved. Match with errors.As:
//
//	var ebe *govern.ErrBudgetExceeded
//	if errors.As(err, &ebe) { ... }
type ErrBudgetExceeded struct {
	Resource  Resource // which budget tripped
	Scope     string   // name of the governor that enforced it
	Requested int64    // size of the failed reservation (0 for disk checks)
	Used      int64    // amount already reserved in that scope (free bytes for disk)
	Budget    int64    // the configured limit (headroom for disk)
}

func (e *ErrBudgetExceeded) Error() string {
	if e.Resource == Disk {
		return fmt.Sprintf("govern: %s budget exceeded in scope %q: %d bytes free, headroom %d required",
			e.Resource, e.Scope, e.Used, e.Budget)
	}
	return fmt.Sprintf("govern: %s budget exceeded in scope %q: reserving %d over %d used of %d",
		e.Resource, e.Scope, e.Requested, e.Used, e.Budget)
}

// Limits configures the budgets a Governor enforces. Zero values mean
// unlimited (or, for disk, "not checked").
type Limits struct {
	MaxBytes      int64 // estimated heap bytes
	MaxFacts      int64 // derived facts per evaluation
	MaxGoroutines int64 // concurrently reserved worker goroutines

	// DiskDir, when non-empty, enables CheckDisk: the directory whose
	// filesystem must keep at least DiskHeadroom bytes free.
	DiskDir      string
	DiskHeadroom int64
	// DiskFree overrides how free space is measured (tests inject
	// fakes here). Nil means the platform statfs via DiskFree().
	DiskFree func(dir string) (int64, error)
}

func (l Limits) budget(r Resource) int64 {
	switch r {
	case Memory:
		return l.MaxBytes
	case Facts:
		return l.MaxFacts
	case Goroutines:
		return l.MaxGoroutines
	}
	return 0
}

// Governor tracks reservations against Limits and forwards every
// charge to its parent, if any.
type Governor struct {
	name   string
	parent *Governor
	limits Limits

	mu     sync.Mutex
	used   map[Resource]int64
	closed bool
}

// New creates a root governor.
func New(name string, l Limits) *Governor {
	return &Governor{name: name, limits: l, used: make(map[Resource]int64)}
}

// Child creates a sub-governor whose reservations are also charged to
// g (and transitively to g's ancestors). Close the child to release
// everything it still holds.
func (g *Governor) Child(name string, l Limits) *Governor {
	c := New(name, l)
	c.parent = g
	return c
}

// Name returns the scope name the governor was created with.
func (g *Governor) Name() string { return g.name }

// Reserve charges n units of r against this governor and all its
// ancestors. If any scope would overrun its budget the whole
// reservation is rolled back and a *ErrBudgetExceeded naming that
// scope is returned. n <= 0 is a no-op.
func (g *Governor) Reserve(r Resource, n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	if err := g.reserveLocal(r, n); err != nil {
		return err
	}
	if err := g.parent.Reserve(r, n); err != nil {
		g.releaseLocal(r, n)
		return err
	}
	return nil
}

func (g *Governor) reserveLocal(r Resource, n int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("govern: reserve %s on closed scope %q", r, g.name)
	}
	used := g.used[r]
	if b := g.limits.budget(r); b > 0 && used+n > b {
		return &ErrBudgetExceeded{Resource: r, Scope: g.name, Requested: n, Used: used, Budget: b}
	}
	g.used[r] = used + n
	return nil
}

func (g *Governor) releaseLocal(r Resource, n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if u := g.used[r] - n; u > 0 {
		g.used[r] = u
	} else {
		delete(g.used, r)
	}
}

// Release returns n units of r to this governor and all its
// ancestors. Releasing more than was reserved clamps to zero.
func (g *Governor) Release(r Resource, n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.releaseLocal(r, n)
	g.parent.Release(r, n)
}

// Used reports how many units of r are currently reserved in this
// scope (including its descendants' charges).
func (g *Governor) Used(r Resource) int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used[r]
}

// ReserveBytes and ReleaseBytes are the memory-budget convenience pair.
// They also satisfy the engine-facing governor interfaces declared
// locally by packages that must not import govern (internal/datalog).
func (g *Governor) ReserveBytes(n int64) error { return g.Reserve(Memory, n) }

// ReleaseBytes returns n estimated bytes to the memory budget.
func (g *Governor) ReleaseBytes(n int64) { g.Release(Memory, n) }

// CheckDisk verifies the disk-headroom constraint of this governor and
// every ancestor that configures one. A violation is returned as
// *ErrBudgetExceeded with Resource == Disk and also matches
// errors.Is(err, syscall.ENOSPC) so callers can classify it alongside
// real write failures from a full disk.
func (g *Governor) CheckDisk() error {
	for s := g; s != nil; s = s.parent {
		if s.limits.DiskDir == "" || s.limits.DiskHeadroom <= 0 {
			continue
		}
		free, err := s.freeBytes()
		if err != nil {
			if errors.Is(err, errUnsupported) {
				continue // platform cannot measure; do not block work
			}
			return fmt.Errorf("govern: disk check in scope %q: %w", s.name, err)
		}
		if free < s.limits.DiskHeadroom {
			// Wrap ENOSPC too, so disk-headroom violations classify
			// exactly like real write failures from a full volume.
			return fmt.Errorf("%w (%w)", &ErrBudgetExceeded{
				Resource: Disk, Scope: s.name, Used: free, Budget: s.limits.DiskHeadroom,
			}, syscall.ENOSPC)
		}
	}
	return nil
}

func (g *Governor) freeBytes() (int64, error) {
	if g.limits.DiskFree != nil {
		return g.limits.DiskFree(g.limits.DiskDir)
	}
	return DiskFree(g.limits.DiskDir)
}

// Err reports why this governor cannot currently admit new work: a
// fully consumed budget in this scope or any ancestor, or a disk
// headroom violation. It returns nil when there is capacity. Probes
// (/readyz) and admission control build on this.
func (g *Governor) Err() error {
	for s := g; s != nil; s = s.parent {
		s.mu.Lock()
		for _, r := range [...]Resource{Memory, Facts, Goroutines} {
			b := s.limits.budget(r)
			if b > 0 && s.used[r] >= b {
				err := &ErrBudgetExceeded{Resource: r, Scope: s.name, Used: s.used[r], Budget: b}
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	return g.CheckDisk()
}

// Usage is a point-in-time snapshot of one scope's reservations,
// suitable for serving from observability endpoints.
type Usage struct {
	Scope      string `json:"scope"`
	Memory     int64  `json:"memory,omitempty"`
	Facts      int64  `json:"facts,omitempty"`
	Goroutines int64  `json:"goroutines,omitempty"`
}

// Stats snapshots the governor's current reservations. The numbers are
// consistent within the scope (taken under one lock) but not across the
// tree — this is an observability read, not a coordination primitive.
func (g *Governor) Stats() Usage {
	if g == nil {
		return Usage{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return Usage{
		Scope:      g.name,
		Memory:     g.used[Memory],
		Facts:      g.used[Facts],
		Goroutines: g.used[Goroutines],
	}
}

// Close releases every outstanding reservation of this governor from
// its ancestors and marks it closed; further Reserves fail. Closing a
// scope is how a finished evaluation, request or job returns its whole
// footprint in one step regardless of individual Release bookkeeping.
func (g *Governor) Close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	held := g.used
	g.used = make(map[Resource]int64)
	g.mu.Unlock()
	for r, n := range held {
		g.parent.Release(r, n)
	}
}
