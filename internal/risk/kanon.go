package risk

import (
	"context"
	"fmt"

	"vadasa/internal/mdb"
)

// KAnonymity is the threshold approximation of Algorithm 4: a tuple whose
// quasi-identifier combination occurs fewer than K times is dangerous
// (risk 1), safe otherwise (risk 0).
type KAnonymity struct {
	K int
	// Attrs optionally restricts the evaluation to a subset of the
	// quasi-identifiers.
	Attrs []string
}

// Name implements Assessor.
func (a KAnonymity) Name() string { return fmt.Sprintf("k-anonymity(k=%d)", a.K) }

// Assess implements Assessor.
func (a KAnonymity) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.AssessContext(context.Background(), d, sem)
}

// AssessContext implements ContextAssessor.
func (a KAnonymity) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	if a.K < 2 {
		return nil, fmt.Errorf("risk: k-anonymity needs K >= 2, got %d", a.K)
	}
	idx, err := attrsOrQIs(d, a.Attrs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(d.Rows))
	for i, f := range mdb.Frequencies(d, idx, sem) {
		if err := pollCtx(ctx, i, a.Name()); err != nil {
			return nil, err
		}
		if f < a.K {
			out[i] = 1
		}
	}
	return out, nil
}
