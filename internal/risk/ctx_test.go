package risk

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"vadasa/internal/mdb"
	"vadasa/internal/synth"
)

// TestAssessContextCancelledMeasures: every built-in measure must notice a
// cancelled context before doing real work, and its plain Assess must stay
// uninterruptible (context.Background) for library callers.
func TestAssessContextCancelledMeasures(t *testing.T) {
	d := synth.InflationGrowth()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	measures := []ContextAssessor{
		ReIdentification{},
		KAnonymity{K: 2},
		IndividualRisk{Estimator: PosteriorSeries},
		SUDA{Threshold: 2},
		LDiversity{L: 2, Sensitive: "Growth6mos"},
		TCloseness{T: 0.3, Sensitive: "Growth6mos"},
	}
	for _, m := range measures {
		if _, err := m.AssessContext(ctx, d, mdb.MaybeMatch); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: AssessContext err = %v, want context.Canceled", m.Name(), err)
		}
		if _, err := m.Assess(d, mdb.MaybeMatch); err != nil {
			t.Errorf("%s: plain Assess failed: %v", m.Name(), err)
		}
	}
}

// TestAssessContextDispatcher: the single dispatch point refuses a cancelled
// context even for assessors that never implemented ContextAssessor.
func TestAssessContextDispatcher(t *testing.T) {
	d := synth.InflationGrowth()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AssessContext(ctx, ReIdentification{}, d, mdb.MaybeMatch); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs, err := AssessContext(nil, ReIdentification{}, d, mdb.MaybeMatch); err != nil || len(rs) != len(d.Rows) {
		t.Fatalf("nil ctx: rs = %d, err = %v", len(rs), err)
	}
}

// TestSUDACancelNoGoroutineLeak drives the worker-pool measure with a
// cancelled context repeatedly: the pool must always be drained, never
// abandoned.
func TestSUDACancelNoGoroutineLeak(t *testing.T) {
	d := synth.InflationGrowth()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 25; i++ {
		if _, err := (SUDA{Threshold: 2}).AssessContext(ctx, d, mdb.MaybeMatch); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}
