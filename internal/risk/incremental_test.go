package risk

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"vadasa/internal/mdb"
)

// incrDataset builds a random weighted dataset with fractional weights, so a
// float summation-order mistake anywhere in the incremental path surfaces as
// a bitwise mismatch instead of hiding behind integer sums.
func incrDataset(rng *rand.Rand, rows, qis, domain int) *mdb.Dataset {
	attrs := make([]mdb.Attribute, qis+1)
	for i := 0; i < qis; i++ {
		attrs[i] = mdb.Attribute{Name: string(rune('A' + i)), Category: mdb.QuasiIdentifier}
	}
	attrs[qis] = mdb.Attribute{Name: "W", Category: mdb.Weight}
	d := mdb.NewDataset("rand", attrs)
	for r := 0; r < rows; r++ {
		vals := make([]mdb.Value, qis+1)
		for i := 0; i < qis; i++ {
			vals[i] = mdb.Const(string(rune('a' + rng.Intn(domain))))
		}
		vals[qis] = mdb.Const("w")
		d.Append(&mdb.Row{ID: r + 1, Values: vals, Weight: 1 + rng.Float64()*4})
	}
	return d
}

func incrementalAssessors() []IncrementalAssessor {
	return []IncrementalAssessor{
		KAnonymity{K: 2},
		KAnonymity{K: 4},
		ReIdentification{},
		IndividualRisk{Estimator: Ratio},
		IndividualRisk{Estimator: PosteriorSeries},
		IndividualRisk{Estimator: MonteCarlo, Samples: 40, Seed: 7},
	}
}

// Property: for every incremental assessor, both semantics, random datasets
// and random suppression batches, Rescore over the maintained index equals a
// fresh full AssessContext bitwise — first with prev == nil (full rescore
// off the index), then with prev + exact dirty set (the cycle's fast path).
func TestRescoreMatchesAssessBitwise(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		sem := mdb.Semantics(trial % 2)
		d := incrDataset(rng, 60+rng.Intn(200), 3, 2+rng.Intn(4))
		for _, a := range incrementalAssessors() {
			attrs, err := a.IndexAttrs(d)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := mdb.BuildGroupIndex(ctx, d, attrs, sem)
			if err != nil {
				t.Fatal(err)
			}
			prev, err := a.Rescore(ctx, idx, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSameScores(t, a.Name()+"/build", prev, mustAssess(t, ctx, a, d, sem))

			qi := d.QuasiIdentifiers()
			for batch := 0; batch < 4; batch++ {
				for i := 0; i < 1+rng.Intn(6); i++ {
					pos := rng.Intn(len(d.Rows))
					attr := qi[rng.Intn(len(qi))]
					if d.Rows[pos].Values[attr].IsNull() {
						continue
					}
					d.Rows[pos].Values[attr] = d.Nulls.Fresh()
					if err := idx.SuppressCell(pos, attr); err != nil {
						t.Fatal(err)
					}
				}
				dirty, err := idx.Commit(ctx)
				if err != nil {
					t.Fatal(err)
				}
				got, err := a.Rescore(ctx, idx, dirty, prev)
				if err != nil {
					t.Fatal(err)
				}
				assertSameScores(t, a.Name()+"/incremental", got, mustAssess(t, ctx, a, d, sem))
				prev = got
			}
			// Undo nothing — each assessor starts from a fresh dataset copy.
			d = incrDataset(rng, 60+rng.Intn(200), 3, 2+rng.Intn(4))
		}
	}
}

func mustAssess(t *testing.T, ctx context.Context, a ContextAssessor, d *mdb.Dataset, sem mdb.Semantics) []float64 {
	t.Helper()
	want, err := a.AssessContext(ctx, d, sem)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertSameScores(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: got %v, want %v (bitwise mismatch)", label, i, got[i], want[i])
		}
	}
}

// Rescore must not mutate the previous vector: the cycle keeps score history
// for the journal, and an aliasing bug would corrupt it retroactively.
func TestRescorePreservesPrev(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(113))
	d := incrDataset(rng, 120, 3, 3)
	qi := d.QuasiIdentifiers()
	a := ReIdentification{}
	idx, err := mdb.BuildGroupIndex(ctx, d, qi, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := a.Rescore(ctx, idx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), prev...)
	d.Rows[3].Values[qi[0]] = d.Nulls.Fresh()
	if err := idx.SuppressCell(3, qi[0]); err != nil {
		t.Fatal(err)
	}
	dirty, err := idx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) == 0 {
		t.Fatal("suppression produced no dirty rows")
	}
	if _, err := a.Rescore(ctx, idx, dirty, prev); err != nil {
		t.Fatal(err)
	}
	assertSameScores(t, "prev", prev, snapshot)
}

// The non-positive-weight error must carry the same identity (message and
// offending row) whether raised by the full path or the incremental one.
func TestRescoreErrorMatchesAssess(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(131))
	d := incrDataset(rng, 40, 2, 2)
	qi := d.QuasiIdentifiers()
	// A singleton group with zero weight: no sibling can rescue its sum.
	for _, attr := range qi {
		d.Rows[17].Values[attr] = mdb.Const("zz")
	}
	d.Rows[17].Weight = 0
	for _, a := range []IncrementalAssessor{ReIdentification{}, IndividualRisk{Estimator: Ratio}} {
		_, wantErr := a.AssessContext(ctx, d, mdb.MaybeMatch)
		if wantErr == nil {
			t.Fatalf("%s: full assess accepted zero weight", a.Name())
		}
		idx, err := mdb.BuildGroupIndex(ctx, d, qi, mdb.MaybeMatch)
		if err != nil {
			t.Fatal(err)
		}
		_, gotErr := a.Rescore(ctx, idx, nil, nil)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: rescore err %v, want %v", a.Name(), gotErr, wantErr)
		}
	}
}

// A prev vector of the wrong length is a caller bug the rescore path must
// reject rather than index out of range on.
func TestRescoreRejectsMismatchedPrev(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(137))
	d := incrDataset(rng, 30, 2, 3)
	qi := d.QuasiIdentifiers()
	idx, err := mdb.BuildGroupIndex(ctx, d, qi, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (KAnonymity{K: 2}).Rescore(ctx, idx, []int{0}, make([]float64, 7)); err == nil {
		t.Fatal("mismatched prev accepted")
	}
}

// SUDA and the cluster assessor intentionally do not implement the
// incremental interface; the cycle's fallback depends on that staying true.
func TestSUDAIsNotIncremental(t *testing.T) {
	var a ContextAssessor = SUDA{Threshold: 3}
	if _, ok := a.(IncrementalAssessor); ok {
		t.Fatal("SUDA claims to be incremental; its risk is not a pure function of one grouping")
	}
}
