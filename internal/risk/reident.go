package risk

import (
	"context"
	"fmt"

	"vadasa/internal/mdb"
)

// ReIdentification is the re-identification-based evaluation of Algorithm 3:
// the risk of a tuple is 1/ΣW over the tuples sharing its quasi-identifier
// combination, the sampling weights estimating the cardinality of the join
// with the identity oracle (Section 2.2).
type ReIdentification struct {
	// Attrs optionally restricts the evaluation to a subset q̂ of the
	// quasi-identifiers — the ones the attacker is assumed to know.
	Attrs []string
}

// Name implements Assessor.
func (ReIdentification) Name() string { return "re-identification" }

// Assess implements Assessor.
func (a ReIdentification) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.AssessContext(context.Background(), d, sem)
}

// AssessContext implements ContextAssessor.
func (a ReIdentification) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	idx, err := attrsOrQIs(d, a.Attrs)
	if err != nil {
		return nil, err
	}
	groups := mdb.ComputeGroups(d, idx, sem)
	out := make([]float64, len(groups))
	for i, g := range groups {
		if err := pollCtx(ctx, i, a.Name()); err != nil {
			return nil, err
		}
		if g.WeightSum <= 0 {
			return nil, fmt.Errorf("risk: row %d has non-positive group weight %g", d.Rows[i].ID, g.WeightSum)
		}
		out[i] = clamp01(1 / g.WeightSum)
	}
	return out, nil
}
