package risk

import (
	"context"
	"fmt"

	"vadasa/internal/mdb"
)

// TCloseness completes the classic disclosure-control triad alongside
// k-anonymity and l-diversity: a quasi-identifier group leaks information
// when the distribution of a sensitive attribute inside the group is far
// from its distribution over the whole table — even a diverse group
// discloses something if, say, 90% of its members defaulted while the global
// rate is 5%. A tuple is dangerous (risk 1) when the total-variation
// distance between its group's sensitive distribution and the global one
// exceeds T.
//
// The original definition uses the Earth Mover's Distance; for categorical
// sensitive attributes with no meaningful order, EMD under the uniform
// ground distance reduces to total variation, which is what financial
// microdata's binned attributes call for.
type TCloseness struct {
	T         float64
	Sensitive string
	// Attrs optionally restricts the grouping to a subset of the
	// quasi-identifiers.
	Attrs []string
}

// Name implements Assessor.
func (a TCloseness) Name() string {
	return fmt.Sprintf("t-closeness(t=%g,%s)", a.T, a.Sensitive)
}

// Assess implements Assessor.
func (a TCloseness) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.AssessContext(context.Background(), d, sem)
}

// AssessContext implements ContextAssessor: ctx is polled on the outer
// per-tuple loop, whose group-distribution scan dominates the cost.
func (a TCloseness) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	if a.T <= 0 || a.T >= 1 {
		return nil, fmt.Errorf("risk: t-closeness needs T in (0,1), got %g", a.T)
	}
	sens := d.AttrIndex(a.Sensitive)
	if sens < 0 {
		return nil, fmt.Errorf("risk: dataset %q has no sensitive attribute %q", d.Name, a.Sensitive)
	}
	idx, err := attrsOrQIs(d, a.Attrs)
	if err != nil {
		return nil, err
	}
	if len(a.Attrs) == 0 {
		filtered := idx[:0]
		for _, i := range idx {
			if i != sens {
				filtered = append(filtered, i)
			}
		}
		idx = filtered
		if len(idx) == 0 {
			return nil, fmt.Errorf("risk: no grouping attributes remain besides the sensitive %q", a.Sensitive)
		}
	} else {
		for _, i := range idx {
			if i == sens {
				return nil, fmt.Errorf("risk: sensitive attribute %q cannot be a grouping attribute", a.Sensitive)
			}
		}
	}

	// Global distribution of the sensitive attribute (nulls excluded).
	global := make(map[string]float64)
	globalN := 0
	for _, r := range d.Rows {
		if v := r.Values[sens]; !v.IsNull() {
			global[v.Constant()]++
			globalN++
		}
	}
	if globalN == 0 {
		return nil, fmt.Errorf("risk: sensitive attribute %q has no constant values", a.Sensitive)
	}

	out := make([]float64, len(d.Rows))
	// Per tuple, gather the sensitive distribution of its maybe-match
	// group. Group membership under maybe-match is per tuple; the common
	// null-free case shares the computation per exact group.
	type cacheEntry struct {
		dist float64
	}
	cache := make(map[string]cacheEntry)
	for row, r := range d.Rows {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("risk: %s cancelled at row %d: %w", a.Name(), row, err)
		}
		key, exact := exactKey(r, idx)
		if exact {
			if e, ok := cache[key]; ok {
				if e.dist > a.T {
					out[row] = 1
				}
				continue
			}
		}
		groupCounts := make(map[string]float64)
		groupN := 0
		for _, r2 := range d.Rows {
			if !mdb.CompatibleTuple(r.Values, r2.Values, idx, sem) {
				continue
			}
			if v := r2.Values[sens]; !v.IsNull() {
				groupCounts[v.Constant()]++
				groupN++
			}
		}
		dist := 1.0
		if groupN > 0 {
			dist = 0
			seen := make(map[string]bool, len(global)+len(groupCounts))
			for k := range global {
				seen[k] = true
			}
			for k := range groupCounts {
				seen[k] = true
			}
			for k := range seen {
				diff := groupCounts[k]/float64(groupN) - global[k]/float64(globalN)
				if diff < 0 {
					diff = -diff
				}
				dist += diff
			}
			dist /= 2
		}
		if exact {
			cache[key] = cacheEntry{dist: dist}
		}
		if dist > a.T {
			out[row] = 1
		}
	}
	return out, nil
}

// exactKey returns a grouping key when the row has no nulls on idx.
func exactKey(r *mdb.Row, idx []int) (string, bool) {
	key := ""
	for _, i := range idx {
		v := r.Values[i]
		if v.IsNull() {
			return "", false
		}
		s := v.Constant()
		key += fmt.Sprintf("%d:%s", len(s), s)
	}
	return key, true
}
