package risk

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"vadasa/internal/mdb"
)

func TestMSUsTooManyAttributesTypedError(t *testing.T) {
	attrs := make([]mdb.Attribute, 31)
	for i := range attrs {
		attrs[i] = mdb.Attribute{Name: fmt.Sprintf("a%d", i), Category: mdb.QuasiIdentifier}
	}
	d := mdb.NewDataset("wide", attrs)
	row := &mdb.Row{Values: make([]mdb.Value, len(attrs))}
	for i := range row.Values {
		row.Values[i] = mdb.Const("x")
	}
	d.Append(row)

	_, err := SUDA{Threshold: 3}.AssessContext(context.Background(), d, mdb.MaybeMatch)
	var tooMany *ErrTooManyAttributes
	if !errors.As(err, &tooMany) {
		t.Fatalf("err = %v, want *ErrTooManyAttributes", err)
	}
	if tooMany.Count != 31 || tooMany.Max != MaxMSUAttributes {
		t.Fatalf("ErrTooManyAttributes = %+v", tooMany)
	}
	if IsTransient(err) {
		t.Fatal("ErrTooManyAttributes classified transient; retries cannot fix it")
	}
	// The convenience wrapper degrades to nil rather than panicking.
	if msus := MSUs(d, d.QuasiIdentifiers(), 3, mdb.MaybeMatch); msus != nil {
		t.Fatalf("MSUs on 31 attributes = %v, want nil", msus)
	}
}

func TestTransientClassification(t *testing.T) {
	base := errors.New("connection reset")
	marked := MarkTransient(base)
	if !IsTransient(marked) {
		t.Fatal("marked error not transient")
	}
	if !IsTransient(fmt.Errorf("assessing: %w", marked)) {
		t.Fatal("wrapping lost the transient mark")
	}
	if !errors.Is(marked, base) {
		t.Fatal("MarkTransient broke the error chain")
	}
	if IsTransient(base) {
		t.Fatal("unmarked error reported transient")
	}
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Fatal("cancellation must be permanent: it is deliberate abandonment")
	}
	if IsTransient(nil) {
		t.Fatal("nil error reported transient")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}
