package risk

import (
	"sort"

	"vadasa/internal/mdb"
)

// AttributeImpact reports how much one quasi-identifier contributes to the
// dataset's disclosure risk: the number of tuples over threshold with the
// full quasi-identifier set, versus with this attribute ignored. A large
// drop means the attribute is what makes tuples identifiable — the signal an
// analyst uses to decide what to generalize or whether an attribute should
// have been categorized as quasi-identifying at all.
type AttributeImpact struct {
	Attr string
	// RiskyWith is the over-threshold count with all quasi-identifiers.
	RiskyWith int
	// RiskyWithout is the count with this attribute ignored.
	RiskyWithout int
}

// Drop returns how many tuples stop being risky when the attribute is
// ignored.
func (ai AttributeImpact) Drop() int { return ai.RiskyWith - ai.RiskyWithout }

// ImpactAnalysis measures every quasi-identifier's impact under the given
// assessor factory: build(attrs) must return the measure restricted to the
// attribute-name set attrs (nil = all). Results are sorted by descending
// drop, ties by schema order.
func ImpactAnalysis(d *mdb.Dataset, build func(attrs []string) Assessor,
	threshold float64, sem mdb.Semantics) ([]AttributeImpact, error) {

	countRisky := func(attrs []string) (int, error) {
		rs, err := build(attrs).Assess(d, sem)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, r := range rs {
			if r > threshold {
				n++
			}
		}
		return n, nil
	}

	baseline, err := countRisky(nil)
	if err != nil {
		return nil, err
	}
	qi := d.QuasiIdentifiers()
	names := make([]string, len(qi))
	for i, a := range qi {
		names[i] = d.Attrs[a].Name
	}
	out := make([]AttributeImpact, 0, len(names))
	for i, skip := range names {
		rest := make([]string, 0, len(names)-1)
		rest = append(rest, names[:i]...)
		rest = append(rest, names[i+1:]...)
		var without int
		if len(rest) == 0 {
			without = 0 // no quasi-identifiers left: nothing identifiable
		} else {
			without, err = countRisky(rest)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, AttributeImpact{
			Attr: skip, RiskyWith: baseline, RiskyWithout: without,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Drop() > out[j].Drop() })
	return out, nil
}
