package risk

import (
	"fmt"
	"strconv"

	"vadasa/internal/mdb"
)

// EstimateWeights fills in sampling weights for a dataset that arrived
// without them, using the estimator Section 2.1 sketches: the weight of a
// tuple is the expected number of population entities sharing its
// quasi-identifier combination, estimated from the posterior distribution of
// combinations in the sample — i.e. populationScale × sample frequency,
// where populationScale is the inverse sampling fraction the data owner
// knows (e.g. 30 when the survey covers one in thirty companies).
//
// Row weights are set in place; when the dataset has a Weight attribute, its
// column is updated too so the weights survive CSV round trips.
func EstimateWeights(d *mdb.Dataset, populationScale float64) error {
	if populationScale <= 0 {
		return fmt.Errorf("risk: population scale must be positive, got %g", populationScale)
	}
	qi := d.QuasiIdentifiers()
	if len(qi) == 0 {
		return fmt.Errorf("risk: dataset %q has no quasi-identifiers to estimate weights from", d.Name)
	}
	freqs := mdb.Frequencies(d, qi, mdb.MaybeMatch)
	w := d.WeightIndex()
	for i, r := range d.Rows {
		weight := populationScale * float64(freqs[i])
		r.Weight = weight
		if w >= 0 {
			r.Values[w] = mdb.Const(strconv.FormatFloat(weight, 'g', -1, 64))
		}
	}
	return nil
}
