package risk

import (
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/synth"
)

func buildKAnon(k int) func(attrs []string) Assessor {
	return func(attrs []string) Assessor {
		return KAnonymity{K: k, Attrs: attrs}
	}
}

func TestImpactAnalysisFigure5(t *testing.T) {
	d := synth.Figure5()
	impacts, err := ImpactAnalysis(d, buildKAnon(2), 0.5, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("ImpactAnalysis: %v", err)
	}
	if len(impacts) != 4 {
		t.Fatalf("impacts = %v", impacts)
	}
	byAttr := map[string]AttributeImpact{}
	for _, ai := range impacts {
		byAttr[ai.Attr] = ai
		if ai.RiskyWith != 3 { // tuples 1, 6, 7
			t.Errorf("%s baseline = %d, want 3", ai.Attr, ai.RiskyWith)
		}
	}
	// Dropping Sector rescues tuple 1 (Roma/1000+/0-30 occurs 5 times)
	// but 6 and 7 stay unique on Area alone.
	if got := byAttr["Sector"].RiskyWithout; got != 2 {
		t.Errorf("without Sector: %d risky, want 2", got)
	}
	// Dropping Area rescues 6 and 7 (Construction/0-200/60-90 x2) but not
	// tuple 1 (only Textiles with 1000+/0-30).
	if got := byAttr["Area"].RiskyWithout; got != 1 {
		t.Errorf("without Area: %d risky, want 1", got)
	}
	// Sorted by drop descending: Area (drop 2) first.
	if impacts[0].Attr != "Area" || impacts[0].Drop() != 2 {
		t.Errorf("top impact = %+v", impacts[0])
	}
}

func TestImpactAnalysisSingleQI(t *testing.T) {
	d := mdb.NewDataset("one", []mdb.Attribute{
		{Name: "A", Category: mdb.QuasiIdentifier},
	})
	d.Append(&mdb.Row{Values: []mdb.Value{mdb.Const("x")}, Weight: 1})
	impacts, err := ImpactAnalysis(d, buildKAnon(2), 0.5, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) != 1 || impacts[0].RiskyWithout != 0 {
		t.Fatalf("impacts = %v", impacts)
	}
}

func TestImpactAnalysisPropagatesErrors(t *testing.T) {
	d := synth.Figure5()
	bad := func(attrs []string) Assessor { return KAnonymity{K: 1, Attrs: attrs} }
	if _, err := ImpactAnalysis(d, bad, 0.5, mdb.MaybeMatch); err == nil {
		t.Fatal("assessor error swallowed")
	}
}
