package risk

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/synth"
)

func TestReIdentificationFigure1(t *testing.T) {
	d := synth.InflationGrowth()
	rs, err := ReIdentification{}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	// Section 2.2: risk is highest for tuple 15 (0.03) and lowest for
	// tuple 7 (0.003); tuple 4's unique combination gives 0.016.
	cases := []struct {
		row  int
		want float64
	}{
		{15, 1.0 / 30}, {7, 1.0 / 300}, {4, 1.0 / 60},
	}
	for _, c := range cases {
		if got := rs[c.row-1]; math.Abs(got-c.want) > 1e-12 {
			t.Errorf("tuple %d risk = %g, want %g", c.row, got, c.want)
		}
	}
	hi, lo := 0, 0
	for i := range rs {
		if rs[i] > rs[hi] {
			hi = i
		}
		if rs[i] < rs[lo] {
			lo = i
		}
	}
	if hi != 14 || lo != 6 {
		t.Errorf("extremes at tuples %d/%d, want 15/7", hi+1, lo+1)
	}
}

func TestReIdentificationGroupsShareRisk(t *testing.T) {
	d := synth.Figure5()
	rs, err := ReIdentification{}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	// Rows 2,3 share a combination (weights 1 each): risk 1/2 for both.
	if rs[1] != 0.5 || rs[2] != 0.5 {
		t.Errorf("shared-group risks = %g, %g, want 0.5", rs[1], rs[2])
	}
	if rs[0] != 1 { // unique combination, weight 1
		t.Errorf("unique row risk = %g, want 1", rs[0])
	}
}

func TestReIdentificationNeedsWeight(t *testing.T) {
	d := mdb.NewDataset("noW", []mdb.Attribute{{Name: "A", Category: mdb.QuasiIdentifier}})
	d.Append(&mdb.Row{Values: []mdb.Value{mdb.Const("x")}})
	if _, err := (ReIdentification{}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Fatal("missing weight attribute not detected")
	}
}

func TestAttrsSubset(t *testing.T) {
	d := synth.InflationGrowth()
	// Restricting q̂ to Area only: every tuple shares its area with many
	// others, so risks drop below the all-QI risks.
	all, err := ReIdentification{}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	area, err := ReIdentification{Attrs: []string{"Area"}}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if area[i] > all[i]+1e-12 {
			t.Fatalf("tuple %d: area-only risk %g exceeds full risk %g", i+1, area[i], all[i])
		}
	}
	if _, err := (ReIdentification{Attrs: []string{"Nope"}}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Fatal("unknown attribute not detected")
	}
}

func TestNoQuasiIdentifiers(t *testing.T) {
	d := mdb.NewDataset("noQI", []mdb.Attribute{{Name: "A", Category: mdb.NonIdentifying}})
	if _, err := (KAnonymity{K: 2}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Fatal("dataset without quasi-identifiers not detected")
	}
}

func TestKAnonymityFigure5(t *testing.T) {
	d := synth.Figure5()
	rs, err := KAnonymity{K: 2}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	want := []float64{1, 0, 0, 0, 0, 1, 1}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("row %d risk = %g, want %g", i+1, rs[i], want[i])
		}
	}
	// Suppressing tuple 1's Sector makes it 2-anonymous under maybe-match.
	d.Rows[0].Values[d.AttrIndex("Sector")] = d.Nulls.Fresh()
	rs, _ = KAnonymity{K: 2}.Assess(d, mdb.MaybeMatch)
	if rs[0] != 0 {
		t.Error("suppressed tuple still risky under maybe-match")
	}
	rs, _ = KAnonymity{K: 2}.Assess(d, mdb.StandardNulls)
	if rs[0] != 1 {
		t.Error("suppressed tuple not risky under standard semantics")
	}
}

func TestKAnonymityValidatesK(t *testing.T) {
	d := synth.Figure5()
	if _, err := (KAnonymity{K: 1}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestIndividualRiskRatio(t *testing.T) {
	d := synth.InflationGrowth()
	rs, err := IndividualRisk{Estimator: Ratio}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	// Tuple 15 is unique with weight 30: ratio risk f/ΣW = 1/30.
	if math.Abs(rs[14]-1.0/30) > 1e-12 {
		t.Errorf("tuple 15 ratio risk = %g, want %g", rs[14], 1.0/30)
	}
}

func TestPosteriorClosedFormF1(t *testing.T) {
	// f=1: E[1/F] = (p/q)·ln(1/p).
	for _, p := range []float64{0.5, 0.1, 1.0 / 300} {
		want := p / (1 - p) * math.Log(1/p)
		if got := posteriorMean(1, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("posteriorMean(1, %g) = %g, want %g", p, got, want)
		}
	}
}

// The series must match a direct high-precision summation of the
// negative-binomial posterior for small f.
func TestPosteriorSeriesMatchesDirectSum(t *testing.T) {
	direct := func(f int, p float64) float64 {
		q := 1 - p
		// term(j) = C(j-1, f-1) p^f q^(j-f)
		term := math.Pow(p, float64(f))
		sum := 0.0
		for j := f; j < 20_000_000; j++ {
			sum += term / float64(j)
			term *= q * float64(j) / float64(j-f+1)
			if term < 1e-18 && j > int(10/p) {
				break
			}
		}
		return sum
	}
	for _, c := range []struct {
		f int
		p float64
	}{{2, 0.4}, {2, 0.05}, {3, 0.2}, {5, 0.5}, {10, 0.3}} {
		want := direct(c.f, c.p)
		got := posteriorMean(c.f, c.p)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("posteriorMean(%d, %g) = %.12f, want %.12f", c.f, c.p, got, want)
		}
	}
}

func TestPosteriorBounds(t *testing.T) {
	// Jensen: E[1/F] >= 1/E[F] = p/f; and E[1/F] <= 1/f (F >= f).
	for f := 1; f <= 60; f += 7 {
		for _, p := range []float64{0.01, 0.2, 0.7, 0.95} {
			got := posteriorMean(f, p)
			lo, hi := p/float64(f), 1/float64(f)
			if got < lo-1e-9 || got > hi+1e-9 {
				t.Errorf("posteriorMean(%d, %g) = %g outside [%g, %g]", f, p, got, lo, hi)
			}
		}
	}
}

func TestMonteCarloApproximatesSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct {
		f int
		p float64
	}{{1, 0.3}, {2, 0.1}, {4, 0.5}} {
		want := posteriorMean(c.f, c.p)
		got := monteCarloMean(c.f, c.p, rng, 20000)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("monteCarloMean(%d, %g) = %g, series %g", c.f, c.p, got, want)
		}
	}
}

func TestIndividualRiskExhaustedPopulation(t *testing.T) {
	// ΣW = f means the sample is the population: risk = 1/f.
	d := mdb.NewDataset("tiny", []mdb.Attribute{
		{Name: "A", Category: mdb.QuasiIdentifier},
		{Name: "W", Category: mdb.Weight},
	})
	d.Append(&mdb.Row{Values: []mdb.Value{mdb.Const("x"), mdb.Const("1")}, Weight: 1})
	for _, est := range []Estimator{Ratio, PosteriorSeries, MonteCarlo} {
		rs, err := IndividualRisk{Estimator: est}.Assess(d, mdb.MaybeMatch)
		if err != nil {
			t.Fatalf("%v: %v", est, err)
		}
		if rs[0] != 1 {
			t.Errorf("%v: risk = %g, want 1", est, rs[0])
		}
	}
}

func TestIndividualRiskDeterministicSeed(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 300, QIs: 4, Dist: synth.DistU, Seed: 9})
	a := IndividualRisk{Estimator: MonteCarlo, Seed: 3, Samples: 50}
	r1, err := a.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := a.Assess(d, mdb.MaybeMatch)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("Monte-Carlo assessment not reproducible with fixed seed")
		}
	}
}

func TestTaylorCloseToSeriesAtBoundary(t *testing.T) {
	f := largeFrequency
	for _, p := range []float64{0.1, 0.5, 0.9} {
		series := posteriorMean(f, p) // series path (f == largeFrequency)
		taylor := taylorMean(f, p)
		if rel := math.Abs(series-taylor) / series; rel > 0.01 {
			t.Errorf("f=%d p=%g: series %g vs taylor %g (rel %g)", f, p, series, taylor, rel)
		}
	}
}

func TestAssessorNames(t *testing.T) {
	for _, a := range []Assessor{
		ReIdentification{}, KAnonymity{K: 2},
		IndividualRisk{Estimator: PosteriorSeries}, SUDA{Threshold: 3},
	} {
		if a.Name() == "" {
			t.Errorf("%T has empty name", a)
		}
	}
}

func TestSummarize(t *testing.T) {
	risks := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	s := Summarize(risks, 0.5)
	if s.Count != 6 || s.OverThreshold != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 0 || s.Max != 1 || math.Abs(s.Median-0.5) > 1e-12 {
		t.Fatalf("quantiles = %+v", s)
	}
	if math.Abs(s.Mean-0.5) > 1e-12 {
		t.Fatalf("mean = %g", s.Mean)
	}
	empty := Summarize(nil, 0.5)
	if empty.Count != 0 || empty.OverThreshold != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{0.7}, 0.5)
	if one.Min != 0.7 || one.Max != 0.7 || one.Median != 0.7 || one.OverThreshold != 1 {
		t.Fatalf("singleton summary = %+v", one)
	}
}

func TestSummaryRender(t *testing.T) {
	var b strings.Builder
	Summarize([]float64{0.1, 0.9}, 0.5).Render(&b)
	out := b.String()
	if !strings.Contains(out, "over threshold: 1") || !strings.Contains(out, "median") {
		t.Fatalf("render = %q", out)
	}
}

func TestEstimateWeights(t *testing.T) {
	d := synth.Figure5()
	if err := EstimateWeights(d, 30); err != nil {
		t.Fatalf("EstimateWeights: %v", err)
	}
	// Rows 2,3 share a combination (freq 2): weight 60; unique rows: 30.
	if d.Rows[1].Weight != 60 || d.Rows[0].Weight != 30 {
		t.Fatalf("weights = %g, %g; want 60, 30", d.Rows[1].Weight, d.Rows[0].Weight)
	}
	// Re-identification risk is now well-defined: 1/30 for unique rows.
	rs, err := ReIdentification{}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs[0]-1.0/30) > 1e-12 {
		t.Fatalf("risk after estimation = %g", rs[0])
	}
}

func TestEstimateWeightsUpdatesColumn(t *testing.T) {
	d := synth.InflationGrowth()
	if err := EstimateWeights(d, 10); err != nil {
		t.Fatal(err)
	}
	w := d.WeightIndex()
	if d.Rows[0].Values[w].Constant() != "10" {
		t.Fatalf("weight column = %q", d.Rows[0].Values[w].Constant())
	}
}

func TestEstimateWeightsValidation(t *testing.T) {
	d := synth.Figure5()
	if err := EstimateWeights(d, 0); err == nil {
		t.Error("zero scale accepted")
	}
	noQI := mdb.NewDataset("x", []mdb.Attribute{{Name: "A"}})
	if err := EstimateWeights(noQI, 10); err == nil {
		t.Error("dataset without QIs accepted")
	}
}
