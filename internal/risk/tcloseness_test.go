package risk

import (
	"testing"

	"vadasa/internal/mdb"
)

// skewedGroups builds a dataset where one group's sensitive distribution is
// far from the global one and another matches it.
func skewedGroups() *mdb.Dataset {
	d := mdb.NewDataset("skew", []mdb.Attribute{
		{Name: "Area", Category: mdb.QuasiIdentifier},
		{Name: "Default", Category: mdb.NonIdentifying},
	})
	rows := [][2]string{
		// North: 4/4 defaulted — far from the global 5/12.
		{"North", "yes"}, {"North", "yes"}, {"North", "yes"}, {"North", "yes"},
		// South: 1/8 defaulted — close to global.
		{"South", "yes"}, {"South", "no"}, {"South", "no"}, {"South", "no"},
		{"South", "no"}, {"South", "no"}, {"South", "no"}, {"South", "no"},
	}
	for _, r := range rows {
		d.Append(&mdb.Row{Values: []mdb.Value{mdb.Const(r[0]), mdb.Const(r[1])}, Weight: 1})
	}
	return d
}

func TestTClosenessFlagsSkewedGroup(t *testing.T) {
	d := skewedGroups()
	// Global: yes 5/12 ≈ 0.417. North: yes 1.0 (TV ≈ 0.583).
	// South: yes 1/8 = 0.125 (TV ≈ 0.292).
	rs, err := TCloseness{T: 0.4, Sensitive: "Default"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	for i := 0; i < 4; i++ {
		if rs[i] != 1 {
			t.Errorf("North row %d risk = %g, want 1", i+1, rs[i])
		}
	}
	for i := 4; i < 12; i++ {
		if rs[i] != 0 {
			t.Errorf("South row %d risk = %g, want 0", i+1, rs[i])
		}
	}
	// A looser bound accepts both groups.
	rs, err = TCloseness{T: 0.9, Sensitive: "Default"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r != 0 {
			t.Errorf("row %d risk = %g with loose T", i+1, r)
		}
	}
}

func TestTClosenessValidation(t *testing.T) {
	d := skewedGroups()
	if _, err := (TCloseness{T: 0, Sensitive: "Default"}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := (TCloseness{T: 1, Sensitive: "Default"}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("T=1 accepted")
	}
	if _, err := (TCloseness{T: 0.3, Sensitive: "Nope"}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("unknown sensitive attribute accepted")
	}
	if _, err := (TCloseness{T: 0.3, Sensitive: "Area", Attrs: []string{"Area"}}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("sensitive attribute in explicit grouping accepted")
	}
}

// Suppression widens groups toward the global distribution: fully merging
// North into everyone brings its distribution to the global one.
func TestTClosenessSuppressionConverges(t *testing.T) {
	d := skewedGroups()
	for i := 0; i < 4; i++ {
		d.Rows[i].Values[0] = d.Nulls.Fresh()
	}
	rs, err := TCloseness{T: 0.4, Sensitive: "Default"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if rs[i] != 0 {
			t.Errorf("suppressed row %d risk = %g, want 0", i+1, rs[i])
		}
	}
}

// An all-null sensitive column is rejected rather than silently safe.
func TestTClosenessNoSensitiveValues(t *testing.T) {
	d := skewedGroups()
	for _, r := range d.Rows {
		r.Values[1] = d.Nulls.Fresh()
	}
	if _, err := (TCloseness{T: 0.4, Sensitive: "Default"}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("all-null sensitive column accepted")
	}
}
