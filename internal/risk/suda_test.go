package risk

import (
	"math/bits"
	"math/rand"
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/synth"
)

// The worked example of Section 4.2: restricted to Area, Sector, Employees
// and ResidentialRevenue, tuple 20 of Figure 1 has exactly two minimal
// sample uniques: {Sector} (the only Financial company) and
// {Employees, ResidentialRevenue} (the only 1000+ with 30-60).
func TestMSUsFigure1Tuple20(t *testing.T) {
	d := synth.InflationGrowth()
	attrs := []string{"Area", "Sector", "Employees", "ResidentialRevenue"}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = d.AttrIndex(a)
	}
	msus := MSUs(d, idx, 4, mdb.MaybeMatch)
	got := msus[19]
	if len(got) != 2 {
		t.Fatalf("tuple 20 has %d MSUs (%v), want 2", len(got), got)
	}
	var sector, empRes uint32 = 1 << 1, 1<<2 | 1<<3
	found := map[uint32]bool{}
	for _, m := range got {
		found[m] = true
	}
	if !found[sector] || !found[empRes] {
		t.Fatalf("tuple 20 MSUs = %b, want {Sector} and {Employees,ResRev}", got)
	}
}

func TestSUDAAssessorFigure1(t *testing.T) {
	d := synth.InflationGrowth()
	attrs := []string{"Area", "Sector", "Employees", "ResidentialRevenue"}
	rs, err := SUDA{Threshold: 3, Attrs: attrs}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	// Tuple 20 has MSUs of sizes 1 and 2, both below 3: dangerous.
	if rs[19] != 1 {
		t.Error("tuple 20 not flagged dangerous")
	}
	// Tuples 2 and 3 share Area/Sector pairs with others but check only
	// that the assessor returns 0/1 values.
	for i, r := range rs {
		if r != 0 && r != 1 {
			t.Errorf("tuple %d risk %g not in {0,1}", i+1, r)
		}
	}
}

func TestSUDAValidatesThreshold(t *testing.T) {
	d := synth.Figure5()
	if _, err := (SUDA{Threshold: 0}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Fatal("Threshold=0 accepted")
	}
}

func TestMSUsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		d := randomDataset(rng, 30, 4, 3)
		idx := d.QuasiIdentifiers()
		got := MSUs(d, idx, 3, mdb.MaybeMatch)
		want := bruteForceMSUs(d, idx, 3, mdb.MaybeMatch)
		for row := range want {
			if !sameMaskSet(got[row], want[row]) {
				t.Fatalf("trial %d row %d: MSUs %b, want %b", trial, row, got[row], want[row])
			}
		}
	}
}

// Properties: every reported MSU is sample-unique; no proper subset of a
// reported MSU is sample-unique; every sample-unique set contains an MSU.
func TestMSUProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randomDataset(rng, 40, 5, 3)
	idx := d.QuasiIdentifiers()
	maxK := 3
	msus := MSUs(d, idx, maxK, mdb.MaybeMatch)

	isUnique := func(row int, mask uint32) bool {
		var sub []int
		for i := range idx {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, idx[i])
			}
		}
		return mdb.Frequencies(d, sub, mdb.MaybeMatch)[row] == 1
	}
	for row, ms := range msus {
		for _, m := range ms {
			if !isUnique(row, m) {
				t.Fatalf("row %d: reported MSU %b is not sample-unique", row, m)
			}
			for sub := (m - 1) & m; sub > 0; sub = (sub - 1) & m {
				if isUnique(row, sub) {
					t.Fatalf("row %d: MSU %b has unique proper subset %b", row, m, sub)
				}
			}
		}
	}
	// Coverage: every unique set of size <= maxK has some MSU under it.
	for mask := uint32(1); mask < 1<<uint(len(idx)); mask++ {
		if bits.OnesCount32(mask) > maxK {
			continue
		}
		var sub []int
		for i := range idx {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, idx[i])
			}
		}
		for row, f := range mdb.Frequencies(d, sub, mdb.MaybeMatch) {
			if f != 1 {
				continue
			}
			covered := false
			for _, m := range msus[row] {
				if m&mask == m {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("row %d: unique set %b has no MSU beneath it", row, mask)
			}
		}
	}
}

func TestMSUsRespectNullSemantics(t *testing.T) {
	d := synth.Figure5()
	idx := d.QuasiIdentifiers()
	before := MSUs(d, idx, 4, mdb.MaybeMatch)
	if len(before[0]) == 0 {
		t.Fatal("tuple 1 should have MSUs before suppression")
	}
	// Suppress Sector of tuple 1: under maybe-match it now matches rows
	// 2-5 on every subset, so it has no sample uniques at all.
	d.Rows[0].Values[d.AttrIndex("Sector")] = d.Nulls.Fresh()
	after := MSUs(d, idx, 4, mdb.MaybeMatch)
	if len(after[0]) != 0 {
		t.Fatalf("tuple 1 still has MSUs after suppression: %b", after[0])
	}
}

func TestScores(t *testing.T) {
	d := synth.InflationGrowth()
	attrs := []string{"Area", "Sector", "Employees", "ResidentialRevenue"}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = d.AttrIndex(a)
	}
	scores := Scores(d, idx, 3, mdb.MaybeMatch)
	// Tuple 20: MSU sizes 1 and 2 -> 2^(3-1) + 2^(3-2) = 6.
	if scores[19] != 6 {
		t.Errorf("tuple 20 score = %g, want 6", scores[19])
	}
	for i, s := range scores {
		if s < 0 {
			t.Errorf("tuple %d negative score %g", i+1, s)
		}
	}
}

func randomDataset(rng *rand.Rand, n, attrs, domain int) *mdb.Dataset {
	as := make([]mdb.Attribute, attrs)
	for i := range as {
		as[i] = mdb.Attribute{Name: string(rune('A' + i)), Category: mdb.QuasiIdentifier}
	}
	d := mdb.NewDataset("rand", as)
	for i := 0; i < n; i++ {
		vals := make([]mdb.Value, attrs)
		for j := range vals {
			vals[j] = mdb.Const(string(rune('a' + rng.Intn(domain))))
		}
		d.Append(&mdb.Row{Values: vals, Weight: float64(rng.Intn(5) + 1)})
	}
	return d
}

// bruteForceMSUs enumerates all subsets and filters minimality explicitly.
func bruteForceMSUs(d *mdb.Dataset, idx []int, maxK int, sem mdb.Semantics) [][]uint32 {
	n := len(idx)
	uniq := make([][]uint32, len(d.Rows))
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		if bits.OnesCount32(mask) > maxK {
			continue
		}
		var sub []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, idx[i])
			}
		}
		for row, f := range mdb.Frequencies(d, sub, sem) {
			if f == 1 {
				uniq[row] = append(uniq[row], mask)
			}
		}
	}
	out := make([][]uint32, len(d.Rows))
	for row, masks := range uniq {
		for _, m := range masks {
			minimal := true
			for _, o := range masks {
				if o != m && o&m == o {
					minimal = false
					break
				}
			}
			if minimal {
				out[row] = append(out[row], m)
			}
		}
	}
	return out
}

func sameMaskSet(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[uint32]bool, len(a))
	for _, m := range a {
		set[m] = true
	}
	for _, m := range b {
		if !set[m] {
			return false
		}
	}
	return true
}

// The paper's sketched refinement: judge tuples by the average MSU size
// rather than the smallest.
func TestSUDAMeanSizeVariant(t *testing.T) {
	d := synth.InflationGrowth()
	attrs := []string{"Area", "Sector", "Employees", "ResidentialRevenue"}
	// Tuple 20 has MSUs of sizes 1 and 2: mean 1.5.
	strict, err := SUDA{Threshold: 2, Attrs: attrs}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := SUDA{Threshold: 2, UseMeanSize: true, Attrs: attrs, MaxK: 3}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if strict[19] != 1 || mean[19] != 1 {
		t.Fatalf("tuple 20: strict %g, mean %g; want both 1 (mean size 1.5 < 2)", strict[19], mean[19])
	}
	// The mean-size rule is never stricter than the min-size rule at the
	// same threshold when MaxK == Threshold-bounded search is equal: any
	// tuple whose mean is below T has some MSU below T.
	meanK, err := SUDA{Threshold: 3, UseMeanSize: true, Attrs: attrs, MaxK: 3}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	strictK, err := SUDA{Threshold: 3, Attrs: attrs, MaxK: 3}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range meanK {
		if meanK[i] == 1 && strictK[i] == 0 {
			t.Fatalf("tuple %d: mean-size flagged but min-size did not", i+1)
		}
	}
}
