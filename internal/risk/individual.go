package risk

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"vadasa/internal/mdb"
)

// Estimator selects how IndividualRisk turns a (sample frequency f,
// estimated population frequency ΣW) pair into a risk.
type Estimator int

// Estimators for the individual-risk posterior.
const (
	// Ratio is the simple estimator of Algorithm 5: risk = f/ΣW, i.e.
	// λ = ΣW/f in Equation 1.
	Ratio Estimator = iota
	// PosteriorSeries computes the exact posterior mean E[1/F | f] under
	// the negative-binomial model of Benedetti and Franconi, by closed
	// form for f=1 and by series summation otherwise.
	PosteriorSeries
	// MonteCarlo estimates E[1/F | f] by sampling from the actual
	// negative-binomial distribution — the “off-the-shelf statistical
	// library” configuration whose cost dominates Figure 7e.
	MonteCarlo
)

// String implements fmt.Stringer.
func (e Estimator) String() string {
	switch e {
	case Ratio:
		return "ratio"
	case PosteriorSeries:
		return "posterior-series"
	case MonteCarlo:
		return "monte-carlo"
	default:
		return fmt.Sprintf("Estimator(%d)", int(e))
	}
}

// IndividualRisk is the Bayesian individual risk of Algorithm 5: the
// frequency F of a combination in the population is unknown, so the risk
// 1/F is estimated from the posterior of F given the sample frequency f,
// with the combination's weight sum ΣW as the population-frequency estimate.
type IndividualRisk struct {
	Estimator Estimator
	// Attrs optionally restricts the evaluation to a subset of the
	// quasi-identifiers.
	Attrs []string
	// Samples is the Monte-Carlo sample count (default 200).
	Samples int
	// Seed makes Monte-Carlo runs reproducible.
	Seed int64
}

// Name implements Assessor.
func (a IndividualRisk) Name() string {
	return fmt.Sprintf("individual-risk(%s)", a.Estimator)
}

// Assess implements Assessor.
func (a IndividualRisk) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.AssessContext(context.Background(), d, sem)
}

// gkey identifies a posterior estimate: groups sharing a (sample frequency,
// weight sum) pair share their risk, so estimates are memoized per pair.
type gkey struct {
	f int
	w float64
}

// AssessContext implements ContextAssessor. The posterior estimation is
// cached per (f, ΣW) pair, so the context is polled on the outer group loop
// — each uncached estimate is itself bounded (series cutoffs, fixed sample
// counts) and cannot stall cancellation for long.
func (a IndividualRisk) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	idx, err := attrsOrQIs(d, a.Attrs)
	if err != nil {
		return nil, err
	}
	groups := mdb.ComputeGroups(d, idx, sem)
	samples := a.Samples
	if samples <= 0 {
		samples = 200
	}

	cache := make(map[gkey]float64)
	out := make([]float64, len(groups))
	for i, g := range groups {
		if err := pollCtx(ctx, i, a.Name()); err != nil {
			return nil, err
		}
		if g.WeightSum <= 0 {
			return nil, fmt.Errorf("risk: row %d has non-positive group weight %g", d.Rows[i].ID, g.WeightSum)
		}
		k := gkey{g.Freq, g.WeightSum}
		r, ok := cache[k]
		if !ok {
			r = a.estimate(g.Freq, g.WeightSum, samples)
			cache[k] = r
		}
		out[i] = r
	}
	return out, nil
}

// estimate is a pure function of the (f, ΣW) pair: the Monte-Carlo
// estimator seeds a private generator from the configured Seed and the pair
// itself rather than drawing from a shared stream. That makes every
// estimate independent of evaluation order — the property the incremental
// and parallel re-scoring paths need to stay bit-identical to a sequential
// full assessment — while keeping runs reproducible for a fixed Seed.
func (a IndividualRisk) estimate(f int, popEst float64, samples int) float64 {
	p := float64(f) / popEst
	if p >= 1 {
		// The sample exhausts the estimated population: F = f exactly.
		return clamp01(1 / float64(f))
	}
	switch a.Estimator {
	case Ratio:
		return clamp01(p)
	case PosteriorSeries:
		return clamp01(posteriorMean(f, p))
	case MonteCarlo:
		if f > largeFrequency {
			return clamp01(taylorMean(f, p))
		}
		rng := rand.New(rand.NewSource(pairSeed(a.Seed, f, popEst)))
		return clamp01(monteCarloMean(f, p, rng, samples))
	default:
		return clamp01(p)
	}
}

// pairSeed mixes the configured seed with the estimate's (f, ΣW) pair
// through two rounds of splitmix64 finalization, so nearby pairs land on
// uncorrelated generator streams.
func pairSeed(seed int64, f int, w float64) int64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	h := mix(uint64(seed) + 0x9e3779b97f4a7c15)
	h = mix(h ^ uint64(f))
	h = mix(h ^ math.Float64bits(w))
	return int64(h)
}

// largeFrequency is the sample frequency above which the posterior of 1/F is
// so concentrated that a second-order Taylor expansion is indistinguishable
// from the exact mean; it also bounds the series/sampling cost on the big
// safe groups that dominate a dataset.
const largeFrequency = 50

// posteriorMean computes E[1/F | f] where F follows the shifted negative
// binomial P(F=j) = C(j-1, f-1) p^f (1-p)^(j-f) for j >= f.
func posteriorMean(f int, p float64) float64 {
	q := 1 - p
	if f == 1 {
		// Closed form: (p/q)·ln(1/p).
		return p / q * math.Log(1/p)
	}
	if f > largeFrequency {
		return taylorMean(f, p)
	}
	// Series: term(j) = C(j-1,f-1) p^f q^(j-f); term(j+1)/term(j) =
	// q·j/(j-f+1). Start at j=f with term p^f.
	term := math.Pow(p, float64(f))
	sum := 0.0
	for j := f; ; j++ {
		sum += term / float64(j)
		term *= q * float64(j) / float64(j-f+1)
		if term/float64(j+1) < 1e-14 && float64(j) > 4*float64(f)/p {
			break
		}
		if j > 50_000_000 {
			break
		}
	}
	return sum
}

// taylorMean is the second-order expansion E[1/F] ≈ 1/μ + σ²/μ³ of the
// negative-binomial posterior, accurate for concentrated posteriors.
func taylorMean(f int, p float64) float64 {
	mu := float64(f) / p
	sigma2 := float64(f) * (1 - p) / (p * p)
	return 1/mu + sigma2/(mu*mu*mu)
}

// monteCarloMean samples F as a sum of f geometric variables.
func monteCarloMean(f int, p float64, rng *rand.Rand, samples int) float64 {
	lnq := math.Log(1 - p)
	total := 0.0
	for s := 0; s < samples; s++ {
		var jf float64
		for i := 0; i < f; i++ {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			jf += 1 + math.Floor(math.Log(u)/lnq)
		}
		total += 1 / jf
	}
	return total / float64(samples)
}
