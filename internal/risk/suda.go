package risk

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"vadasa/internal/govern"
	"vadasa/internal/mdb"
)

// SUDA is the Special Unique Detection Algorithm of Algorithm 6: a tuple is
// dangerous when it has a minimal sample unique (MSU) — a minimal set of
// quasi-identifiers whose values single the tuple out — of size below
// Threshold, the assumption being that identities disclosed by very few
// attributes are too easy to cross-link.
type SUDA struct {
	// Threshold is the MSU size below which a tuple is dangerous
	// (Rule 8 of Algorithm 6). The paper's experiments use 3.
	Threshold int
	// MaxK bounds the size of the combinations searched; zero defaults to
	// Threshold, which is sufficient for the risk decision.
	MaxK int
	// UseMeanSize switches to the "more sophisticated check" the paper
	// sketches at the end of Section 4.2: instead of any single small MSU,
	// the tuple is dangerous when the average size of all its MSUs is
	// below Threshold — one large MSU no longer condemns a tuple whose
	// other unique sets are broad.
	UseMeanSize bool
	// Attrs optionally restricts the evaluation to a subset of the
	// quasi-identifiers.
	Attrs []string
}

// Name implements Assessor.
func (a SUDA) Name() string { return fmt.Sprintf("suda(msu<%d)", a.Threshold) }

// Assess implements Assessor.
func (a SUDA) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.AssessContext(context.Background(), d, sem)
}

// AssessContext implements ContextAssessor: the combination search polls the
// context between attribute combinations, so even the exponential part of
// SUDA stops within one combination's worth of work.
func (a SUDA) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	if a.Threshold < 1 {
		return nil, fmt.Errorf("risk: SUDA needs Threshold >= 1, got %d", a.Threshold)
	}
	idx, err := attrsOrQIs(d, a.Attrs)
	if err != nil {
		return nil, err
	}
	maxK := a.MaxK
	if maxK == 0 {
		maxK = a.Threshold
	}
	msus, err := MSUsContext(ctx, d, idx, maxK, sem)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(d.Rows))
	for i, ms := range msus {
		if a.UseMeanSize {
			if len(ms) == 0 {
				continue
			}
			total := 0
			for _, m := range ms {
				total += bits.OnesCount32(m)
			}
			if float64(total)/float64(len(ms)) < float64(a.Threshold) {
				out[i] = 1
			}
			continue
		}
		for _, m := range ms {
			if bits.OnesCount32(m) < a.Threshold {
				out[i] = 1
				break
			}
		}
	}
	return out, nil
}

// MSUs enumerates, for every row, its minimal sample uniques of size at most
// maxK over the attribute indexes idx, as bitmasks over positions of idx.
// A set S is a sample unique for row t when t is the only row matching its
// own projection on S; it is minimal when no proper subset of S is itself a
// sample unique for t (the data-level analogue of superkey vs key discussed
// in Section 4.2).
//
// The search proceeds by increasing combination size, so a candidate is
// minimal exactly when no previously recorded MSU is a subset of it — the
// pruning that keeps the enumeration polynomial per tuple and reproduces the
// non-blowup behaviour of Figure 7f.
//
// MSUs requires len(idx) <= MaxMSUAttributes; beyond that it returns nil.
// Use MSUsContext to receive the typed ErrTooManyAttributes instead.
func MSUs(d *mdb.Dataset, idx []int, maxK int, sem mdb.Semantics) [][]uint32 {
	out, _ := MSUsContext(context.Background(), d, idx, maxK, sem)
	return out
}

// MSUsContext is MSUs honouring ctx: the mask dispatch loop polls the
// context before handing each combination to the worker pool, and on
// cancellation it drains the pool (no goroutine leaks) before returning an
// error wrapping ctx.Err(). With a background context it never fails.
func MSUsContext(ctx context.Context, d *mdb.Dataset, idx []int, maxK int, sem mdb.Semantics) ([][]uint32, error) {
	if len(idx) > MaxMSUAttributes {
		return nil, &ErrTooManyAttributes{Count: len(idx), Max: MaxMSUAttributes}
	}
	if maxK > len(idx) {
		maxK = len(idx)
	}
	// When ctx carries a resource governor, the subset pool, the
	// per-worker buffers and the recorded MSUs are charged against the
	// memory budget and the worker pool against the goroutine budget,
	// so a combinatorial blowup trips a typed budget error instead of
	// exhausting the process. Everything is refunded when the search
	// returns; govern methods are nil-safe, so the ungoverned path pays
	// only nil checks.
	gov := govern.From(ctx)
	var charged int64
	defer func() { gov.Release(govern.Memory, charged) }()
	reserve := func(n int64, what string, s int) error {
		if err := gov.Reserve(govern.Memory, n); err != nil {
			return fmt.Errorf("risk: MSU search %s at combination size %d: %w", what, s, err)
		}
		charged += n
		return nil
	}
	out := make([][]uint32, len(d.Rows))
	if err := reserve(int64(len(d.Rows))*24, "result buffers", 0); err != nil {
		return nil, err
	}

	var masks []uint32
	var genMasks func(start int, mask uint32, size int)
	genMasks = func(start int, mask uint32, size int) {
		if size == 0 {
			masks = append(masks, mask)
			return
		}
		for i := start; i <= len(idx)-size; i++ {
			genMasks(i+1, mask|1<<uint(i), size-1)
		}
	}
	// Frequency counting per combination is independent work: fan the
	// masks of one size class out to all cores, then fold the uniqueness
	// results sequentially in mask order so minimality filtering stays
	// deterministic. This is the data parallelism behind the paper's
	// scalability desideratum (viii).
	workers := runtime.GOMAXPROCS(0)
	for s := 1; s <= maxK; s++ {
		masks = masks[:0]
		genMasks(0, 0, s)
		// Subset pool (masks + per-mask unique-row slice headers) and
		// per-worker scratch for this size class.
		pool := int64(len(masks))*(4+24) + int64(workers)*int64(8*maxK+48)
		if err := reserve(pool, "subset pool", s); err != nil {
			return nil, err
		}
		if err := gov.Reserve(govern.Goroutines, int64(workers)); err != nil {
			return nil, fmt.Errorf("risk: MSU search worker pool at combination size %d: %w", s, err)
		}
		unique := make([][]int, len(masks)) // rows that are sample-unique per mask
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sub := make([]int, 0, maxK)
				for mi := range next {
					mask := masks[mi]
					sub = sub[:0]
					for i := 0; i < len(idx); i++ {
						if mask&(1<<uint(i)) != 0 {
							sub = append(sub, idx[i])
						}
					}
					for row, f := range mdb.Frequencies(d, sub, sem) {
						if f == 1 {
							unique[mi] = append(unique[mi], row)
						}
					}
				}
			}()
		}
		var cancelled error
		for mi := range masks {
			if err := ctx.Err(); err != nil {
				cancelled = fmt.Errorf("risk: MSU search cancelled at combination size %d: %w", s, err)
				break
			}
			next <- mi
		}
		close(next)
		wg.Wait()
		gov.Release(govern.Goroutines, int64(workers))
		if cancelled != nil {
			return nil, cancelled
		}

		var uniqueRows, recorded int64
		for mi, mask := range masks {
			uniqueRows += int64(len(unique[mi]))
			for _, row := range unique[mi] {
				minimal := true
				for _, m := range out[row] {
					if m&mask == m {
						minimal = false
						break
					}
				}
				if minimal {
					out[row] = append(out[row], mask)
					recorded++
				}
			}
		}
		// Charge what this size class actually accumulated: the unique-row
		// indexes folded above and the MSUs recorded into the result.
		if err := reserve(uniqueRows*8+recorded*4, "recorded uniques", s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scores computes a DIS-SUDA-style score per row: every MSU of size s
// contributes 2^(maxK−s), so small MSUs — the most disclosive ones — weigh
// exponentially more, in the spirit of SUDA2's scoring. Rows without MSUs
// score zero.
func Scores(d *mdb.Dataset, idx []int, maxK int, sem mdb.Semantics) []float64 {
	msus := MSUs(d, idx, maxK, sem)
	out := make([]float64, len(d.Rows))
	for i, ms := range msus {
		for _, m := range ms {
			out[i] += float64(int(1) << uint(maxK-bits.OnesCount32(m)))
		}
	}
	return out
}
