package risk

import (
	"fmt"
	"io"
	"sort"
)

// Summary condenses a per-tuple risk vector into the figures an analyst
// checks before deciding whether a dataset can be shared — the preemptive
// "confidentiality score beforehand" of the paper's desideratum (iii).
type Summary struct {
	Count         int
	OverThreshold int
	Threshold     float64
	Mean          float64
	// Min, Quartile1, Median, Quartile3, Max describe the distribution.
	Min, Quartile1, Median, Quartile3, Max float64
}

// Summarize computes the summary of a risk vector against a threshold.
func Summarize(risks []float64, threshold float64) Summary {
	s := Summary{Count: len(risks), Threshold: threshold}
	if len(risks) == 0 {
		return s
	}
	sorted := append([]float64(nil), risks...)
	sort.Float64s(sorted)
	total := 0.0
	for _, r := range risks {
		total += r
		if r > threshold {
			s.OverThreshold++
		}
	}
	s.Mean = total / float64(len(risks))
	quantile := func(q float64) float64 {
		pos := q * float64(len(sorted)-1)
		lo := int(pos)
		if lo >= len(sorted)-1 {
			return sorted[len(sorted)-1]
		}
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	s.Min = sorted[0]
	s.Quartile1 = quantile(0.25)
	s.Median = quantile(0.5)
	s.Quartile3 = quantile(0.75)
	s.Max = sorted[len(sorted)-1]
	return s
}

// Render writes the summary as text.
func (s Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "risk summary over %d tuples (threshold %.2f):\n", s.Count, s.Threshold)
	fmt.Fprintf(w, "  over threshold: %d (%.2f%%)\n",
		s.OverThreshold, 100*safeRatio(s.OverThreshold, s.Count))
	fmt.Fprintf(w, "  mean %.4g | min %.4g | q1 %.4g | median %.4g | q3 %.4g | max %.4g\n",
		s.Mean, s.Min, s.Quartile1, s.Median, s.Quartile3, s.Max)
}

func safeRatio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
