package risk

import (
	"context"
	"fmt"

	"vadasa/internal/mdb"
)

// LDiversity extends the framework beyond the paper's off-the-shelf
// measures: even a k-anonymous group discloses information when all its
// members share the same sensitive value (the homogeneity attack on
// k-anonymity). A tuple is dangerous (risk 1) when its quasi-identifier
// group carries fewer than L distinct values of the sensitive attribute.
//
// The sensitive attribute is typically one of the non-identifying business
// attributes — e.g. Growth6mos in the Inflation & Growth survey: knowing
// that *every* textile company in an area shrank discloses each one's
// performance without re-identifying anybody.
type LDiversity struct {
	L         int
	Sensitive string
	// Attrs optionally restricts the grouping to a subset of the
	// quasi-identifiers.
	Attrs []string
}

// Name implements Assessor.
func (a LDiversity) Name() string {
	return fmt.Sprintf("l-diversity(l=%d,%s)", a.L, a.Sensitive)
}

// Assess implements Assessor.
func (a LDiversity) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return a.AssessContext(context.Background(), d, sem)
}

// AssessContext implements ContextAssessor: the per-tuple compatibility scan
// (quadratic in the null-bearing case) polls ctx on its outer row loop.
func (a LDiversity) AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	if a.L < 2 {
		return nil, fmt.Errorf("risk: l-diversity needs L >= 2, got %d", a.L)
	}
	sens := d.AttrIndex(a.Sensitive)
	if sens < 0 {
		return nil, fmt.Errorf("risk: dataset %q has no sensitive attribute %q", d.Name, a.Sensitive)
	}
	idx, err := attrsOrQIs(d, a.Attrs)
	if err != nil {
		return nil, err
	}
	if len(a.Attrs) == 0 {
		// Default grouping: all quasi-identifiers except the sensitive
		// attribute itself, which commonly is one of them.
		filtered := idx[:0]
		for _, i := range idx {
			if i != sens {
				filtered = append(filtered, i)
			}
		}
		idx = filtered
		if len(idx) == 0 {
			return nil, fmt.Errorf("risk: no grouping attributes remain besides the sensitive %q", a.Sensitive)
		}
	} else {
		for _, i := range idx {
			if i == sens {
				return nil, fmt.Errorf("risk: sensitive attribute %q cannot be a grouping attribute", a.Sensitive)
			}
		}
	}

	// Distinct sensitive values per tuple's group. Groups under
	// maybe-match do not partition the dataset, so diversity is computed
	// per tuple over its compatible rows; the common no-null case falls
	// back to one pass per exact group.
	out := make([]float64, len(d.Rows))
	hasNull := false
	for _, r := range d.Rows {
		for _, i := range idx {
			if r.Values[i].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			break
		}
	}

	diversity := func(row int) int {
		seen := make(map[string]bool)
		anyNull := false
		for _, r2 := range d.Rows {
			if !mdb.CompatibleTuple(d.Rows[row].Values, r2.Values, idx, sem) {
				continue
			}
			v := r2.Values[sens]
			if v.IsNull() {
				anyNull = true
				continue
			}
			seen[v.Constant()] = true
		}
		n := len(seen)
		if anyNull {
			// A suppressed sensitive value could be anything: it adds
			// at most one further distinct value.
			n++
		}
		return n
	}

	if hasNull || sem == mdb.StandardNulls {
		// Per-tuple scan; null-bearing datasets are small by the time
		// they matter (only anonymized tuples carry nulls). Each step is
		// a full-dataset compatibility pass, so poll ctx on every row.
		for row := range d.Rows {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("risk: %s cancelled at row %d: %w", a.Name(), row, err)
			}
			if diversity(row) < a.L {
				out[row] = 1
			}
		}
		return out, nil
	}

	// Fast path: exact groups partition the dataset.
	type groupStat struct {
		distinct map[string]bool
		anyNull  bool
		rows     []int
	}
	groups := make(map[string]*groupStat)
	for row, r := range d.Rows {
		if err := pollCtx(ctx, row, a.Name()); err != nil {
			return nil, err
		}
		key := ""
		for _, i := range idx {
			v := r.Values[i].Constant()
			key += fmt.Sprintf("%d:%s", len(v), v)
		}
		g, ok := groups[key]
		if !ok {
			g = &groupStat{distinct: make(map[string]bool)}
			groups[key] = g
		}
		g.rows = append(g.rows, row)
		if v := r.Values[sens]; v.IsNull() {
			g.anyNull = true
		} else {
			g.distinct[v.Constant()] = true
		}
	}
	for _, g := range groups {
		n := len(g.distinct)
		if g.anyNull {
			// A suppressed sensitive value could be anything distinct.
			n++
		}
		if n < a.L {
			for _, row := range g.rows {
				out[row] = 1
			}
		}
	}
	return out, nil
}
