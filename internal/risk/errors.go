package risk

import (
	"errors"
	"fmt"
)

// MaxMSUAttributes is the hard ceiling on the quasi-identifier count the MSU
// combination search accepts: masks are 32-bit and the subset lattice beyond
// 30 attributes is computationally out of reach anyway.
const MaxMSUAttributes = 30

// ErrTooManyAttributes reports a dataset whose quasi-identifier set exceeds
// what a combinatorial risk measure can search. It is a permanent error: the
// same dataset will fail the same way on every retry, so callers (job
// managers, HTTP servers) should reject the request rather than retry it.
type ErrTooManyAttributes struct {
	// Count is the number of attributes requested; Max the supported limit.
	Count, Max int
}

// Error implements error.
func (e *ErrTooManyAttributes) Error() string {
	return fmt.Sprintf("risk: MSU search supports at most %d attributes, got %d", e.Max, e.Count)
}

// transientError marks an error as worth retrying. It stays unexported: the
// taxonomy is consumed through MarkTransient and IsTransient so the wrapped
// chain keeps working with errors.Is/As.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }

func (e *transientError) Unwrap() error { return e.err }

// Transient implements the classification probe used by IsTransient.
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true for it — the way a
// plug-in assessor backed by a remote service (a reasoning cluster, a
// database) labels I/O hiccups as retryable. A nil err returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether any error in the chain declares itself
// transient via a `Transient() bool` method. Everything else — including
// context cancellation, which signals deliberate abandonment, and typed
// permanent errors like ErrTooManyAttributes — is permanent: retrying cannot
// help, so a job manager must fail the job instead of burning attempts.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}
