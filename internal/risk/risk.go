// Package risk implements the statistical disclosure risk estimation
// techniques of Section 4.2: re-identification-based risk (Algorithm 3),
// k-anonymity (Algorithm 4), individual risk in the Benedetti–Franconi
// Bayesian model (Algorithm 5), and SUDA minimal-sample-unique detection
// (Algorithm 6).
//
// Every assessor returns one risk score in [0,1] per tuple; the
// anonymization cycle compares the scores against the threshold T. The
// assessors honour the maybe-match semantics of labelled nulls, so risk
// drops as local suppression injects nulls.
package risk

import (
	"fmt"

	"vadasa/internal/mdb"
)

// Assessor estimates the statistical disclosure risk of every tuple.
type Assessor interface {
	// Name identifies the technique, e.g. for plug-in selection.
	Name() string
	// Assess returns one risk in [0,1] per row of d (by slice position),
	// grouping tuples by quasi-identifier values under the given null
	// semantics.
	Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error)
}

// attrsOrQIs resolves an optional attribute-name restriction (the subset
// q̂ ⊆ q of Section 2.2) to attribute indexes; with no restriction all
// quasi-identifiers are used.
func attrsOrQIs(d *mdb.Dataset, names []string) ([]int, error) {
	if len(names) == 0 {
		qi := d.QuasiIdentifiers()
		if len(qi) == 0 {
			return nil, fmt.Errorf("risk: dataset %q has no quasi-identifiers", d.Name)
		}
		return qi, nil
	}
	idx := make([]int, len(names))
	for i, n := range names {
		j := d.AttrIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("risk: dataset %q has no attribute %q", d.Name, n)
		}
		idx[i] = j
	}
	return idx, nil
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
