// Package risk implements the statistical disclosure risk estimation
// techniques of Section 4.2: re-identification-based risk (Algorithm 3),
// k-anonymity (Algorithm 4), individual risk in the Benedetti–Franconi
// Bayesian model (Algorithm 5), and SUDA minimal-sample-unique detection
// (Algorithm 6).
//
// Every assessor returns one risk score in [0,1] per tuple; the
// anonymization cycle compares the scores against the threshold T. The
// assessors honour the maybe-match semantics of labelled nulls, so risk
// drops as local suppression injects nulls.
package risk

import (
	"context"
	"fmt"

	"vadasa/internal/mdb"
)

// Assessor estimates the statistical disclosure risk of every tuple.
type Assessor interface {
	// Name identifies the technique, e.g. for plug-in selection.
	Name() string
	// Assess returns one risk in [0,1] per row of d (by slice position),
	// grouping tuples by quasi-identifier values under the given null
	// semantics.
	Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error)
}

// ContextAssessor is an Assessor that can be cancelled mid-evaluation. All
// measures in this package implement it by polling ctx on their outer
// row/combination loops, so an interactive deployment can bound the
// wall-clock cost of one assessment with a deadline. Third-party assessors
// that only implement Assessor still work everywhere — they are simply not
// interruptible between calls.
type ContextAssessor interface {
	Assessor
	// AssessContext is Assess honouring ctx: it returns an error wrapping
	// ctx.Err() as soon as it observes the context done.
	AssessContext(ctx context.Context, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error)
}

// AssessContext evaluates a over d with cancellation support when the
// assessor provides it, falling back to a plain (uninterruptible) Assess
// call otherwise. It is the single dispatch point the anonymization cycle
// and the framework use, so every built-in measure stays cancellable even
// when wrapped by decorators that forward the context.
func AssessContext(ctx context.Context, a Assessor, d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("risk: %s: %w", a.Name(), err)
	}
	if ca, ok := a.(ContextAssessor); ok {
		return ca.AssessContext(ctx, d, sem)
	}
	return a.Assess(d, sem)
}

// ctxRowPoll is how many outer-loop iterations an assessor runs between
// context polls: frequent enough that cancellation lands within a fraction
// of a second, rare enough that the check never shows up in profiles.
const ctxRowPoll = 1024

// pollCtx reports a done context every ctxRowPoll-th iteration i (and always
// on the first), wrapping the cause for errors.Is.
func pollCtx(ctx context.Context, i int, name string) error {
	if i%ctxRowPoll != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("risk: %s cancelled at row %d: %w", name, i, err)
	}
	return nil
}

// attrsOrQIs resolves an optional attribute-name restriction (the subset
// q̂ ⊆ q of Section 2.2) to attribute indexes; with no restriction all
// quasi-identifiers are used.
func attrsOrQIs(d *mdb.Dataset, names []string) ([]int, error) {
	if len(names) == 0 {
		qi := d.QuasiIdentifiers()
		if len(qi) == 0 {
			return nil, fmt.Errorf("risk: dataset %q has no quasi-identifiers", d.Name)
		}
		return qi, nil
	}
	idx := make([]int, len(names))
	for i, n := range names {
		j := d.AttrIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("risk: dataset %q has no attribute %q", d.Name, n)
		}
		idx[i] = j
	}
	return idx, nil
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
