package risk

import (
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/synth"
)

// homogeneous builds a dataset where one 2-anonymous group shares a single
// sensitive value and another is diverse.
func homogeneous() *mdb.Dataset {
	d := mdb.NewDataset("homog", []mdb.Attribute{
		{Name: "Area", Category: mdb.QuasiIdentifier},
		{Name: "Sector", Category: mdb.QuasiIdentifier},
		{Name: "Growth", Category: mdb.NonIdentifying},
	})
	rows := [][3]string{
		{"North", "Textiles", "-20"}, // homogeneous group: both shrank
		{"North", "Textiles", "-20"},
		{"South", "Commerce", "5"}, // diverse group
		{"South", "Commerce", "12"},
	}
	for _, r := range rows {
		d.Append(&mdb.Row{Values: []mdb.Value{mdb.Const(r[0]), mdb.Const(r[1]), mdb.Const(r[2])}, Weight: 1})
	}
	return d
}

func TestLDiversityFlagsHomogeneousGroups(t *testing.T) {
	d := homogeneous()
	rs, err := LDiversity{L: 2, Sensitive: "Growth"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	want := []float64{1, 1, 0, 0}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("row %d risk = %g, want %g", i+1, rs[i], want[i])
		}
	}
}

func TestLDiversityValidation(t *testing.T) {
	d := homogeneous()
	if _, err := (LDiversity{L: 1, Sensitive: "Growth"}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("L=1 accepted")
	}
	if _, err := (LDiversity{L: 2, Sensitive: "Nope"}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("unknown sensitive attribute accepted")
	}
	if _, err := (LDiversity{L: 2, Sensitive: "Area", Attrs: []string{"Area", "Sector"}}).Assess(d, mdb.MaybeMatch); err == nil {
		t.Error("sensitive attribute inside explicit grouping set accepted")
	}
	// A quasi-identifier used as the sensitive attribute is auto-excluded
	// from the default grouping.
	if _, err := (LDiversity{L: 2, Sensitive: "Area"}).Assess(d, mdb.MaybeMatch); err != nil {
		t.Errorf("sensitive QI not auto-excluded: %v", err)
	}
}

// k-anonymity alone misses the homogeneity attack that l-diversity catches.
func TestLDiversityStricterThanKAnonymity(t *testing.T) {
	d := homogeneous()
	kan, err := KAnonymity{K: 2}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if kan[0] != 0 {
		t.Fatal("setup broken: group should be 2-anonymous")
	}
	ldiv, err := LDiversity{L: 2, Sensitive: "Growth"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if ldiv[0] != 1 {
		t.Fatal("homogeneity attack not flagged")
	}
}

// Suppressing a quasi-identifier merges a homogeneous group into a larger,
// more diverse one under maybe-match: risk falls.
func TestLDiversitySuppressionHelps(t *testing.T) {
	d := homogeneous()
	d.Rows[0].Values[1] = d.Nulls.Fresh() // Textiles -> ⊥
	d.Rows[1].Values[1] = d.Nulls.Fresh()
	rs, err := LDiversity{L: 2, Sensitive: "Growth"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	// Suppressed rows are still North-only: they match each other and no
	// one else; still homogeneous.
	if rs[0] != 1 {
		t.Fatalf("north group risk = %g, want 1 (still homogeneous)", rs[0])
	}
	d.Rows[0].Values[0] = d.Nulls.Fresh() // Area too: now matches everyone
	rs, err = LDiversity{L: 2, Sensitive: "Growth"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] != 0 {
		t.Fatalf("fully suppressed row risk = %g, want 0", rs[0])
	}
}

// A suppressed sensitive value counts as one potential extra distinct value.
func TestLDiversityNullSensitive(t *testing.T) {
	d := homogeneous()
	d.Rows[1].Values[2] = d.Nulls.Fresh() // one Growth suppressed
	rs, err := LDiversity{L: 2, Sensitive: "Growth"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] != 0 {
		t.Fatalf("group with suppressed sensitive value risk = %g, want 0", rs[0])
	}
}

// The slow (null-aware) and fast (exact-group) paths agree on null-free data.
func TestLDiversityPathsAgree(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 400, QIs: 4, Dist: synth.DistU, Seed: 5})
	// Use Employees as the sensitive attribute and the remaining QIs for
	// grouping.
	attrs := []string{"Area", "Sector", "ResidentialRevenue"}
	a := LDiversity{L: 2, Sensitive: "Employees", Attrs: attrs}
	fast, err := a.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	// StandardNulls forces the per-tuple scan on the same (null-free) data.
	slow, err := a.Assess(d, mdb.StandardNulls)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("row %d: fast %g, slow %g", i, fast[i], slow[i])
		}
	}
}

func TestLDiversityInCycleConverges(t *testing.T) {
	d := homogeneous()
	// The anonymization cycle with l-diversity as the risk measure must
	// converge (rows 1-2 exhaust all quasi-identifiers).
	// This exercises the Assessor contract end to end.
	rs, err := LDiversity{L: 2, Sensitive: "Growth"}.Assess(d, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] != 1 {
		t.Fatal("setup broken")
	}
}
