package risk

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"vadasa/internal/mdb"
)

// Property (the streaming layer's correctness contract): after any
// interleaving of row appends, row deletes and cell suppressions, Rescore
// over the maintained index with the caller-shifted prev vector and the
// exact dirty set equals a fresh full AssessContext over the current row
// set, bitwise, for every incremental assessor under both semantics. The
// caller-side shift mirrors internal/stream: a delete cuts the slot from
// prev, an append extends prev with a zero placeholder (the appended row is
// always dirty, so the placeholder is never read as a committed score).
func TestRescoreAfterRowOpsMatchesAssessBitwise(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 6; trial++ {
		sem := mdb.Semantics(trial % 2)
		for _, a := range incrementalAssessors() {
			qis := 3
			domain := 2 + rng.Intn(4)
			d := incrDataset(rng, 50+rng.Intn(150), qis, domain)
			qi := d.QuasiIdentifiers()
			nextID := len(d.Rows)
			attrs, err := a.IndexAttrs(d)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := mdb.BuildGroupIndex(ctx, d, attrs, sem)
			if err != nil {
				t.Fatal(err)
			}
			prev, err := a.Rescore(ctx, idx, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 5; batch++ {
				for i := 0; i < 1+rng.Intn(8); i++ {
					switch op := rng.Intn(4); {
					case op == 0 && len(d.Rows) > 10: // withdraw a row
						pos := rng.Intn(len(d.Rows))
						d.Rows = append(d.Rows[:pos], d.Rows[pos+1:]...)
						if err := idx.DeleteRow(pos); err != nil {
							t.Fatal(err)
						}
						prev = append(prev[:pos], prev[pos+1:]...)
					case op == 1: // append a row
						vals := make([]mdb.Value, qis+1)
						for j := 0; j < qis; j++ {
							vals[j] = mdb.Const(string(rune('a' + rng.Intn(domain))))
						}
						vals[qis] = mdb.Const("w")
						nextID++
						d.Append(&mdb.Row{ID: nextID, Values: vals, Weight: 1 + rng.Float64()*4})
						if err := idx.AppendRow(len(d.Rows) - 1); err != nil {
							t.Fatal(err)
						}
						prev = append(prev, 0)
					default: // suppress a cell
						pos := rng.Intn(len(d.Rows))
						attr := qi[rng.Intn(len(qi))]
						if d.Rows[pos].Values[attr].IsNull() {
							continue
						}
						d.Rows[pos].Values[attr] = d.Nulls.Fresh()
						if err := idx.SuppressCell(pos, attr); err != nil {
							t.Fatal(err)
						}
					}
				}
				dirty, err := idx.Commit(ctx)
				if err != nil {
					t.Fatal(err)
				}
				got, err := a.Rescore(ctx, idx, dirty, prev)
				if err != nil {
					t.Fatal(err)
				}
				assertSameScores(t, a.Name()+"/rowops", got, mustAssess(t, ctx, a, d, sem))
				prev = got
			}
		}
	}
}
