package risk

import (
	"context"
	"fmt"

	"vadasa/internal/mdb"
	"vadasa/internal/pool"
)

// IncrementalAssessor is an Assessor that can re-score a dataset from a
// maintained mdb.GroupIndex instead of regrouping from scratch. The
// anonymization cycle builds the index once, feeds each iteration's
// suppression deltas into it, and hands the resulting dirty set to Rescore,
// so the per-iteration cost scales with how many tuples a batch actually
// disturbed rather than with the dataset.
//
// Implemented by KAnonymity, IndividualRisk and ReIdentification — the
// measures whose score is a pure function of a tuple's GroupInfo. SUDA's
// risk depends on subset-projection uniqueness (no single grouping captures
// it) and cluster.Assessor folds in graph propagation; neither implements
// the interface, and the cycle transparently falls back to full assessment
// for them.
type IncrementalAssessor interface {
	ContextAssessor
	// IndexAttrs resolves the attribute indexes the assessor groups rows
	// by — the index the cycle must build and maintain for Rescore.
	IndexAttrs(d *mdb.Dataset) ([]int, error)
	// Rescore evaluates risk from the index. With prev == nil every row is
	// scored (a full assessment off the maintained groups). Otherwise it
	// returns a fresh slice equal to prev except at the dirty row
	// positions, which are re-scored from the index's current infos; prev
	// is never mutated. Rescore with a nil prev must agree bitwise with
	// AssessContext on the same dataset — the cycle's debug-verify mode
	// enforces exactly that.
	Rescore(ctx context.Context, idx *mdb.GroupIndex, dirty []int, prev []float64) ([]float64, error)
}

// GroupScorer is the per-tuple core of an IncrementalAssessor: the score of
// one row as a pure function of its maintained GroupInfo (rowID is carried
// only for error identity). Rescore is implemented on top of ScoreGroup, so
// any executor that evaluates ScoreGroup elsewhere — another goroutine,
// another process, another machine — lands on the same bits the local path
// computes. The distributed shard layer (internal/dist) ships GroupInfos to
// worker processes and calls exactly this method on the other side.
type GroupScorer interface {
	// ScoreGroup returns the row's risk from its group aggregates. It must
	// be deterministic and free of shared state: two calls with the same
	// (g, rowID) return the same bits, on any host.
	ScoreGroup(g mdb.GroupInfo, rowID int) (float64, error)
}

// rescoreRows runs score over either every row (prev == nil) or just the
// dirty rows, fanning the work out on the governor-charged pool. score must
// be a pure function of the row position; out slots are disjoint per chunk,
// so the result is independent of the worker count.
func rescoreRows(ctx context.Context, n int, dirty []int, prev []float64, score func(row int, out []float64) error) ([]float64, error) {
	out := make([]float64, n)
	if prev == nil {
		err := pool.Run(ctx, n, func(lo, hi int) error {
			for row := lo; row < hi; row++ {
				if err := score(row, out); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if len(prev) != n {
		return nil, fmt.Errorf("risk: rescore: previous vector has %d rows, index has %d", len(prev), n)
	}
	copy(out, prev)
	err := pool.Run(ctx, len(dirty), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := score(dirty[i], out); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// IndexAttrs implements IncrementalAssessor.
func (a KAnonymity) IndexAttrs(d *mdb.Dataset) ([]int, error) {
	if a.K < 2 {
		return nil, fmt.Errorf("risk: k-anonymity needs K >= 2, got %d", a.K)
	}
	return attrsOrQIs(d, a.Attrs)
}

// ScoreGroup implements GroupScorer: a tuple is dangerous exactly when its
// maintained group frequency is below K.
func (a KAnonymity) ScoreGroup(g mdb.GroupInfo, rowID int) (float64, error) {
	if g.Freq < a.K {
		return 1, nil
	}
	return 0, nil
}

// Rescore implements IncrementalAssessor via ScoreGroup.
func (a KAnonymity) Rescore(ctx context.Context, idx *mdb.GroupIndex, dirty []int, prev []float64) ([]float64, error) {
	if a.K < 2 {
		return nil, fmt.Errorf("risk: k-anonymity needs K >= 2, got %d", a.K)
	}
	infos := idx.Infos()
	return rescoreRows(ctx, len(infos), dirty, prev, func(row int, out []float64) error {
		r, err := a.ScoreGroup(infos[row], idx.Dataset().Rows[row].ID)
		if err != nil {
			return err
		}
		out[row] = r
		return nil
	})
}

// IndexAttrs implements IncrementalAssessor.
func (a ReIdentification) IndexAttrs(d *mdb.Dataset) ([]int, error) {
	return attrsOrQIs(d, a.Attrs)
}

// ScoreGroup implements GroupScorer: risk is 1/ΣW over the maintained group
// weight sum.
func (a ReIdentification) ScoreGroup(g mdb.GroupInfo, rowID int) (float64, error) {
	if g.WeightSum <= 0 {
		return 0, fmt.Errorf("risk: row %d has non-positive group weight %g", rowID, g.WeightSum)
	}
	return clamp01(1 / g.WeightSum), nil
}

// Rescore implements IncrementalAssessor via ScoreGroup.
func (a ReIdentification) Rescore(ctx context.Context, idx *mdb.GroupIndex, dirty []int, prev []float64) ([]float64, error) {
	infos := idx.Infos()
	rows := idx.Dataset().Rows
	return rescoreRows(ctx, len(infos), dirty, prev, func(row int, out []float64) error {
		r, err := a.ScoreGroup(infos[row], rows[row].ID)
		if err != nil {
			return err
		}
		out[row] = r
		return nil
	})
}

// IndexAttrs implements IncrementalAssessor.
func (a IndividualRisk) IndexAttrs(d *mdb.Dataset) ([]int, error) {
	return attrsOrQIs(d, a.Attrs)
}

// ScoreGroup implements GroupScorer. The posterior estimate is a pure
// function of the (f, ΣW) pair — the Monte-Carlo estimator derives its
// generator seed from the pair itself — so the result is independent of
// where and in what order the call runs. Callers scoring many rows should
// memoize per (f, ΣW) pair, as Rescore does; ScoreGroup itself never caches.
func (a IndividualRisk) ScoreGroup(g mdb.GroupInfo, rowID int) (float64, error) {
	if g.WeightSum <= 0 {
		return 0, fmt.Errorf("risk: row %d has non-positive group weight %g", rowID, g.WeightSum)
	}
	samples := a.Samples
	if samples <= 0 {
		samples = 200
	}
	return a.estimate(g.Freq, g.WeightSum, samples), nil
}

// Rescore implements IncrementalAssessor. The posterior estimate is a pure
// function of a group's (f, ΣW) pair — the Monte-Carlo estimator derives
// its generator seed from the pair itself — so re-scoring an arbitrary
// subset of rows, in any order and on any number of workers, lands on the
// same values a full assessment computes. The per-chunk memo only saves
// recomputation.
func (a IndividualRisk) Rescore(ctx context.Context, idx *mdb.GroupIndex, dirty []int, prev []float64) ([]float64, error) {
	infos := idx.Infos()
	rows := idx.Dataset().Rows
	return rescoreChunked(ctx, len(infos), dirty, prev, func(rowsIdx []int, out []float64) error {
		cache := make(map[gkey]float64)
		for _, row := range rowsIdx {
			g := infos[row]
			k := gkey{g.Freq, g.WeightSum}
			r, ok := cache[k]
			if !ok {
				var err error
				r, err = a.ScoreGroup(g, rows[row].ID)
				if err != nil {
					return err
				}
				cache[k] = r
			}
			out[row] = r
		}
		return nil
	})
}

// rescoreChunked is rescoreRows for scorers that amortize state (a memo
// cache) across a chunk: score receives the row positions of one chunk and
// writes their slots in out.
func rescoreChunked(ctx context.Context, n int, dirty []int, prev []float64, score func(rows []int, out []float64) error) ([]float64, error) {
	out := make([]float64, n)
	if prev == nil {
		err := pool.Run(ctx, n, func(lo, hi int) error {
			rows := make([]int, hi-lo)
			for i := range rows {
				rows[i] = lo + i
			}
			return score(rows, out)
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if len(prev) != n {
		return nil, fmt.Errorf("risk: rescore: previous vector has %d rows, index has %d", len(prev), n)
	}
	copy(out, prev)
	err := pool.Run(ctx, len(dirty), func(lo, hi int) error {
		return score(dirty[lo:hi], out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
