package journal

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"

	"vadasa/internal/faultfs"
)

// Iterator streams a journal's committed records one at a time without
// materializing the whole file, applying the same longest-valid-prefix rule
// as ReadFile: iteration stops cleanly at the first torn, corrupt or
// out-of-sequence line. A stream recovery replaying a multi-gigabyte WAL
// holds one record in memory at a time instead of the full decoded slice.
//
// The usual loop:
//
//	it, err := journal.Records(ctx, path)
//	defer it.Close()
//	for it.Next() {
//		rec := it.Record()
//		...
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator struct {
	ctx  context.Context
	f    io.ReadCloser
	br   *bufio.Reader
	rec  Record
	err  error
	want int   // next expected sequence number
	off  int64 // byte offset just past the last valid record
	torn bool
	done bool
}

// Records opens the journal at path on the real filesystem and returns an
// iterator over its committed records.
func Records(ctx context.Context, path string) (*Iterator, error) {
	return RecordsIn(ctx, nil, path)
}

// RecordsIn is Records through an explicit filesystem (nil means the real
// one).
func RecordsIn(ctx context.Context, fsys faultfs.FS, path string) (*Iterator, error) {
	cfg := Config{FS: fsys}.withDefaults()
	f, err := cfg.FS.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: opening for iteration: %w", err)
	}
	return &Iterator{ctx: ctx, f: f, br: bufio.NewReaderSize(f, 64<<10), want: 1}, nil
}

// Next advances to the next committed record. It returns false at the end
// of the valid prefix, on a context cancellation, or on an I/O error —
// distinguish the cases with Err and Torn.
func (it *Iterator) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		it.done = true
		return false
	}
	line, err := it.br.ReadBytes('\n')
	if err == io.EOF {
		// A partial final line is a torn append that never committed — the
		// standard repair rule discards it. This also covers a file
		// truncated underneath a live iterator: reads simply hit the new
		// EOF and iteration ends cleanly at the last whole record seen.
		it.done = true
		it.torn = len(line) > 0
		return false
	}
	if err != nil {
		it.err = fmt.Errorf("journal: iterating: %w", err)
		it.done = true
		return false
	}
	rec, ok := ParseLine(line[:len(line)-1], it.want)
	if !ok {
		it.torn = true
		it.done = true
		return false
	}
	it.rec = rec
	it.off += int64(len(line))
	it.want++
	return true
}

// Record returns the record Next advanced to. Valid only after a true Next.
func (it *Iterator) Record() Record { return it.rec }

// Err returns the first I/O or context error, nil on a clean end of the
// valid prefix (corruption is not an error; see Torn).
func (it *Iterator) Err() error { return it.err }

// Torn reports whether the file held bytes past the valid prefix.
func (it *Iterator) Torn() bool { return it.done && it.torn }

// Valid is the byte offset just past the last record Next accepted — the
// truncation point for a torn-tail repair.
func (it *Iterator) Valid() int64 { return it.off }

// LastSeq is the sequence number of the last accepted record (0 if none).
func (it *Iterator) LastSeq() int { return it.want - 1 }

// Close releases the underlying file. Safe to call at any point.
func (it *Iterator) Close() error { return it.f.Close() }

// OpenAppendStream is OpenAppend for journals too large to hold decoded in
// memory: it streams every committed record through fn while locating the
// valid prefix, repairs a torn tail, and returns a writer positioned after
// the last committed record. A non-nil error from fn aborts the open (the
// file is left untouched). The returned count is the number of records
// replayed.
func OpenAppendStream(ctx context.Context, path string, cfg Config, fn func(Record) error) (*Writer, int, error) {
	cfg = cfg.withDefaults()
	it, err := RecordsIn(ctx, cfg.FS, path)
	if err != nil {
		return nil, 0, err
	}
	for it.Next() {
		if err := fn(it.Record()); err != nil {
			it.Close()
			return nil, 0, err
		}
	}
	if err := it.Err(); err != nil {
		it.Close()
		return nil, 0, err
	}
	valid, seq, torn, count := it.Valid(), it.LastSeq(), it.Torn(), it.LastSeq()
	it.Close()

	f, err := cfg.FS.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: open: %w", err)
	}
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("journal: syncing repair: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("journal: seeking to tail: %w", err)
	}
	return &Writer{f: f, fs: cfg.FS, path: path, seq: seq, off: valid, headroom: cfg.DiskHeadroom, onAppend: cfg.OnAppend}, count, nil
}
