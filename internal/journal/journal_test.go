package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	N    int    `json:"n"`
	Note string `json:"note"`
}

// writeSample builds a journal of n records and returns its path and bytes.
func writeSample(t testing.TB, n int) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		typ := TypeIter
		if i == 1 {
			typ = TypeStart
		}
		if i == n {
			typ = TypeDone
		}
		if err := w.Append(typ, payload{N: i, Note: "record with a \n newline and ⊥3 null"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestRoundTrip(t *testing.T) {
	path, _ := writeSample(t, 5)
	scan, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Fatal("clean journal reported torn")
	}
	if len(scan.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(scan.Records))
	}
	for i, rec := range scan.Records {
		if rec.Seq != i+1 {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		var p payload
		if err := rec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.N != i+1 {
			t.Fatalf("record %d decoded N=%d", i, p.N)
		}
	}
	if scan.Last().Type != TypeDone {
		t.Fatalf("last record type = %q, want done", scan.Last().Type)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path, _ := writeSample(t, 1)
	if _, err := Create(path); err == nil {
		t.Fatal("Create over an existing journal succeeded")
	}
}

// TestTruncationEveryOffset simulates a crash mid-append at every possible
// byte boundary: the reader must recover exactly the records whose newline
// made it to disk, never erroring and never inventing a phantom record.
func TestTruncationEveryOffset(t *testing.T) {
	path, data := writeSample(t, 6)
	full, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// lineEnd[i] is the offset just past record i+1.
	var lineEnds []int64
	for off, b := range data {
		if b == '\n' {
			lineEnds = append(lineEnds, int64(off)+1)
		}
	}
	dir := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		p := filepath.Join(dir, "cut.journal")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		scan, err := ReadFile(p)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantRecords := 0
		for _, end := range lineEnds {
			if int64(cut) >= end {
				wantRecords++
			}
		}
		if len(scan.Records) != wantRecords {
			t.Fatalf("cut at %d: got %d records, want %d", cut, len(scan.Records), wantRecords)
		}
		for i, rec := range scan.Records {
			if rec.Seq != full.Records[i].Seq || !bytes.Equal(rec.Payload, full.Records[i].Payload) {
				t.Fatalf("cut at %d: record %d differs from the original", cut, i)
			}
		}
		if scan.Valid != prefixEnd(lineEnds, wantRecords) {
			t.Fatalf("cut at %d: Valid=%d, want %d", cut, scan.Valid, prefixEnd(lineEnds, wantRecords))
		}
		if scan.Torn != (int64(cut) > scan.Valid) {
			t.Fatalf("cut at %d: Torn=%v inconsistent with Valid=%d", cut, scan.Torn, scan.Valid)
		}
	}
}

func prefixEnd(lineEnds []int64, n int) int64 {
	if n == 0 {
		return 0
	}
	return lineEnds[n-1]
}

// TestBitFlipEveryByte flips one bit in every byte of the journal in turn.
// Whatever the corruption, the reader must return a prefix of the original
// records — no error, no phantom or reordered decisions.
func TestBitFlipEveryByte(t *testing.T) {
	path, data := writeSample(t, 4)
	full, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "flip.journal")
	for off := 0; off < len(data); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[off] ^= bit
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			scan, err := ReadFile(p)
			if err != nil {
				t.Fatalf("flip at %d: %v", off, err)
			}
			if len(scan.Records) > len(full.Records) {
				t.Fatalf("flip at %d: %d records from a %d-record journal", off, len(scan.Records), len(full.Records))
			}
			for i, rec := range scan.Records {
				orig := full.Records[i]
				if rec.Seq != orig.Seq || rec.Type != orig.Type || !bytes.Equal(rec.Payload, orig.Payload) {
					t.Fatalf("flip at %d: record %d is a phantom: %+v", off, i, rec)
				}
			}
		}
	}
}

// TestOpenAppendRepairsTornTail crashes mid-record, reopens, and proves the
// repaired journal accepts new appends with contiguous sequence numbers.
func TestOpenAppendRepairsTornTail(t *testing.T) {
	path, data := writeSample(t, 3)
	// Tear the last record in half.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	w, scan, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Torn {
		t.Fatal("torn tail not detected")
	}
	if len(scan.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(scan.Records))
	}
	if err := w.Append(TypeDone, payload{N: 99}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if reread.Torn {
		t.Fatal("repaired journal still torn")
	}
	if len(reread.Records) != 3 {
		t.Fatalf("got %d records after repair+append, want 3", len(reread.Records))
	}
	last := reread.Last()
	if last.Seq != 3 || last.Type != TypeDone {
		t.Fatalf("appended record = seq %d type %q, want seq 3 done", last.Seq, last.Type)
	}
}

// TestSequenceGapStopsScan: a record with a skipped sequence number (e.g. a
// line from another journal spliced in with a valid CRC) must end the prefix.
func TestSequenceGapStopsScan(t *testing.T) {
	path, data := writeSample(t, 4)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Drop line 3 (seq 3): seq 4 follows seq 2 and must be rejected.
	spliced := bytes.Join([][]byte{lines[0], lines[1], lines[3]}, nil)
	if err := os.WriteFile(path, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	scan, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 2 {
		t.Fatalf("got %d records, want the 2 before the gap", len(scan.Records))
	}
	if !scan.Torn {
		t.Fatal("gap not reported as torn")
	}
}

// FuzzReadPrefix feeds arbitrary bytes to the reader: it must never panic,
// never error on in-memory-valid files, and every accepted record must carry
// contiguous sequence numbers and a checksum that actually matches.
func FuzzReadPrefix(f *testing.F) {
	_, data := writeSample(f, 3)
	f.Add(data)
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		scan, err := ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile errored on corrupt input: %v", err)
		}
		for i, rec := range scan.Records {
			if rec.Seq != i+1 {
				t.Fatalf("record %d has seq %d", i, rec.Seq)
			}
			if rec.Payload != nil && !json.Valid(rec.Payload) {
				t.Fatalf("record %d has invalid payload", i)
			}
		}
		if scan.Valid > int64(len(data)) {
			t.Fatalf("Valid=%d beyond file size %d", scan.Valid, len(data))
		}
	})
}
