// Package journal implements the write-ahead journal that makes
// anonymization jobs durable: an append-only JSONL file where every record
// carries a CRC-32C checksum and a strictly increasing sequence number, and
// every append is fsync'd before it is acknowledged.
//
// The format is one record per line:
//
//	crc32c-hex8 SPACE json NEWLINE
//
// where the checksum covers exactly the JSON bytes. A record counts as
// committed only once its terminating newline is on disk; the reader accepts
// the longest valid prefix of the file and treats everything after the first
// torn, corrupt or out-of-sequence line as lost (the standard WAL repair
// rule). Payload schemas belong to the caller — the journal frames, checks
// and persists opaque JSON payloads.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"vadasa/internal/faultfs"
)

// Type tags a journal record. The journal itself accepts any non-empty type;
// the conventional job-journal types are declared here so writers and readers
// agree on spelling.
type Type string

// Record types of a durable anonymization job.
const (
	// TypeStart is the first record: the job spec and the input digest.
	TypeStart Type = "start"
	// TypeIter commits one anonymization-cycle iteration.
	TypeIter Type = "iter"
	// TypeDone is the terminal record: success, failure or cancellation.
	TypeDone Type = "done"
	// TypeLease records a distributed-shard lease grant or revocation
	// (internal/dist). Lease records are advisory for a live run — the
	// supervisor fences stale replies in memory — but on restart they
	// re-establish the epoch floor so a worker surviving from a previous
	// incarnation can never have a reply admitted.
	TypeLease Type = "lease"
)

// Record is one committed journal entry.
type Record struct {
	// Seq is the 1-based sequence number; the reader rejects gaps.
	Seq int `json:"seq"`
	// Type tags the payload schema.
	Type Type `json:"type"`
	// Time is the wall-clock append time — audit metadata only; recovery
	// never depends on it.
	Time time.Time `json:"time"`
	// Payload is the caller's record body.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Decode unmarshals the record payload into v.
func (r Record) Decode(v any) error {
	if err := json.Unmarshal(r.Payload, v); err != nil {
		return fmt.Errorf("journal: decoding %s record %d: %w", r.Type, r.Seq, err)
	}
	return nil
}

// castagnoli is the CRC-32C table (the polynomial used by ext4, iSCSI and
// most storage formats; better error detection than IEEE for short records).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config parameterizes how a journal touches the filesystem. The zero
// Config selects the real filesystem with no headroom check, matching
// the historical behaviour of Create/OpenAppend.
type Config struct {
	// FS is the filesystem the journal writes through; nil means the
	// real one. Tests inject faultfs.Faulty here to pin crash and
	// disk-pressure behaviour deterministically.
	FS faultfs.FS
	// DiskHeadroom, when positive, is the minimum number of free bytes
	// the journal's filesystem must retain before an append is
	// attempted. A violation fails the append with an error matching
	// errors.Is(err, syscall.ENOSPC) — before any bytes are written, so
	// the journal never adds a torn record to an already-full volume.
	DiskHeadroom int64
	// OnAppend, when non-nil, observes every committed append: it is
	// called with the record's sequence number and the exact framed line
	// bytes (no trailing newline) after the local fsync succeeds but
	// before the writer advances its commit point. Returning an error
	// fails the Append — the caller's usual Repair path then truncates
	// the locally-durable-but-unacknowledged record, which is how the
	// replication layer implements synchronous commit: a record either
	// reaches a follower or never happened.
	OnAppend func(seq int, line []byte) error
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = faultfs.OS
	}
	return c
}

// Writer appends records to a journal file, fsyncing each one.
type Writer struct {
	f    faultfs.File
	fs   faultfs.FS
	path string
	seq  int
	// off is the byte offset just past the last committed record — the
	// truncation point Repair restores after a failed append.
	off int64
	// headroom is the pre-append free-space floor (0 = unchecked).
	headroom int64
	// onAppend is Config.OnAppend (nil = no observer).
	onAppend func(seq int, line []byte) error
}

// Create creates a fresh journal at path (failing if it already exists) and
// fsyncs the parent directory so the file itself survives a crash.
func Create(path string) (*Writer, error) {
	return CreateWith(path, Config{})
}

// CreateWith is Create under an explicit filesystem configuration.
func CreateWith(path string, cfg Config) (*Writer, error) {
	cfg = cfg.withDefaults()
	f, err := cfg.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	if err := syncDir(cfg.FS, filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, fs: cfg.FS, path: path, headroom: cfg.DiskHeadroom, onAppend: cfg.OnAppend}, nil
}

// OpenAppend opens an existing journal for appending: it scans the file,
// truncates it to the longest valid prefix (repairing a torn tail from a
// crash mid-append), and positions the writer after the last committed
// record. The scan is returned so the caller can rebuild its state.
func OpenAppend(path string) (*Writer, *Scan, error) {
	return OpenAppendWith(path, Config{})
}

// OpenAppendWith is OpenAppend under an explicit filesystem configuration.
func OpenAppendWith(path string, cfg Config) (*Writer, *Scan, error) {
	cfg = cfg.withDefaults()
	scan, err := ReadFileIn(cfg.FS, path)
	if err != nil {
		return nil, nil, err
	}
	f, err := cfg.FS.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	if scan.Torn {
		if err := f.Truncate(scan.Valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: syncing repair: %w", err)
		}
	}
	if _, err := f.Seek(scan.Valid, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seeking to tail: %w", err)
	}
	seq := 0
	if n := len(scan.Records); n > 0 {
		seq = scan.Records[n-1].Seq
	}
	return &Writer{f: f, fs: cfg.FS, path: path, seq: seq, off: scan.Valid, headroom: cfg.DiskHeadroom, onAppend: cfg.OnAppend}, scan, nil
}

// Append marshals the payload, frames it with a sequence number and CRC, and
// writes + fsyncs the record. It returns only after the record is durable.
// The journal is a confidentiality sink: everything appended is replicated
// to standbys and replayed on recovery, so raw microdata may only enter
// under an explicit, reasoned //conftaint:ok waiver at the append site.
//
//conftaint:sink
func (w *Writer) Append(typ Type, payload any) error {
	if w.headroom > 0 {
		free, err := w.fs.Free(filepath.Dir(w.path))
		if err == nil && free >= 0 && free < w.headroom {
			// Refuse before writing a single byte: an append into a
			// nearly-full volume would at best leave a torn record to
			// repair. Wrapping ENOSPC lets the job layer classify this
			// exactly like a write that hit the real wall.
			return fmt.Errorf("journal: %d bytes free below %d headroom before %s append: %w",
				free, w.headroom, typ, syscall.ENOSPC)
		}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("journal: marshaling %s payload: %w", typ, err)
	}
	rec := Record{Seq: w.seq + 1, Type: typ, Time: time.Now().UTC(), Payload: body}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshaling %s record: %w", typ, err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%08x ", crc32.Checksum(line, castagnoli))
	buf.Write(line)
	buf.WriteByte('\n')
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("journal: appending %s record: %w", typ, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s record: %w", typ, err)
	}
	if w.onAppend != nil {
		// The observer runs between local durability and commit-point
		// advance: on error the record is on disk but w.off still points
		// before it, so the caller's Repair truncates it away exactly like
		// a torn write.
		framed := buf.Bytes()[:buf.Len()-1] // CRC-prefixed line, newline stripped
		if err := w.onAppend(rec.Seq, framed); err != nil {
			return fmt.Errorf("journal: %s append observer: %w", typ, err)
		}
	}
	w.seq = rec.Seq
	w.off += int64(buf.Len())
	return nil
}

// Seq returns the sequence number of the last committed record (0 if none).
func (w *Writer) Seq() int { return w.seq }

// Repair truncates the file back to the end of the last committed
// record, discarding whatever a failed append left behind (a torn line
// from an ENOSPC mid-write), and repositions the writer there. A
// writer that keeps appending after a failed Append without repairing
// would bury its next record behind garbage the reader stops at; a
// paused job repairs before it parks so the journal stays clean for
// both in-process resume and post-crash recovery.
func (w *Writer) Repair() error {
	if err := w.f.Truncate(w.off); err != nil {
		return fmt.Errorf("journal: repairing torn tail: %w", err)
	}
	if _, err := w.f.Seek(w.off, 0); err != nil {
		return fmt.Errorf("journal: seeking after repair: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing repair: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// Scan is the result of validating a journal file.
type Scan struct {
	// Records is the longest valid prefix of the journal.
	Records []Record
	// Valid is the byte offset just past the last committed record;
	// everything beyond it is a torn or corrupt tail.
	Valid int64
	// Torn reports whether the file had bytes past the valid prefix.
	Torn bool
}

// Last returns the final committed record, or a zero Record if none.
func (s *Scan) Last() Record {
	if len(s.Records) == 0 {
		return Record{}
	}
	return s.Records[len(s.Records)-1]
}

// ReadFile scans a journal, returning the longest valid prefix of records.
// Corruption — a torn final line, a CRC mismatch, malformed JSON, a sequence
// gap — is not an error: the scan simply stops there and reports Torn. Only
// I/O failures are errors.
func ReadFile(path string) (*Scan, error) {
	return ReadFileIn(faultfs.OS, path)
}

// ReadFileIn is ReadFile through an explicit filesystem.
func ReadFileIn(fsys faultfs.FS, path string) (*Scan, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: reading: %w", err)
	}
	scan := &Scan{}
	offset := int64(0)
	wantSeq := 1
	for offset < int64(len(data)) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			break // incomplete final line: the append never committed
		}
		line := data[offset : offset+int64(nl)]
		rec, ok := ParseLine(line, wantSeq)
		if !ok {
			break
		}
		scan.Records = append(scan.Records, rec)
		offset += int64(nl) + 1
		wantSeq++
	}
	scan.Valid = offset
	scan.Torn = offset < int64(len(data))
	return scan, nil
}

// ParseLine validates one framed record — 8 hex digits, a space, JSON whose
// CRC-32C matches and whose sequence number is the expected one — and
// returns the decoded record. It is the single framing rule the scanner,
// the iterator and the replication receiver all share: a standby accepts a
// shipped frame only if ParseLine accepts it, so a corrupt or replayed
// frame can never enter a mirrored journal.
func ParseLine(line []byte, wantSeq int) (Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	sum, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	body := line[9:]
	if crc32.Checksum(body, castagnoli) != uint32(sum) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false
	}
	if rec.Seq != wantSeq || rec.Type == "" {
		return Record{}, false
	}
	return rec, true
}

// syncDir fsyncs a directory so a freshly created file's directory entry is
// durable.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: syncing dir: %w", err)
	}
	return nil
}
