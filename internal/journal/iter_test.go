package journal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeTestJournal(t *testing.T, dir string, n int) string {
	t.Helper()
	path := filepath.Join(dir, "it.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= n; i++ {
		if err := w.Append(TypeIter, map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// The iterator must stream exactly the records ReadFile decodes, in order,
// and agree with it on the valid offset and torn flag — including over a
// journal with a torn tail.
func TestIteratorMatchesReadFile(t *testing.T) {
	path := writeTestJournal(t, t.TempDir(), 25)
	// Append garbage past the valid prefix: a torn line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"seq\":26,\"ty"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	scan, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	it, err := Records(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []Record
	for it.Next() {
		got = append(got, it.Record())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scan.Records) {
		t.Fatalf("iterator yielded %d records, scan %d", len(got), len(scan.Records))
	}
	for i := range got {
		if got[i].Seq != scan.Records[i].Seq || got[i].Type != scan.Records[i].Type ||
			string(got[i].Payload) != string(scan.Records[i].Payload) {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], scan.Records[i])
		}
	}
	if it.Valid() != scan.Valid {
		t.Fatalf("iterator valid offset %d, scan %d", it.Valid(), scan.Valid)
	}
	if !it.Torn() || !scan.Torn {
		t.Fatalf("torn flags: iterator %v, scan %v, want both true", it.Torn(), scan.Torn)
	}
	if it.LastSeq() != 25 {
		t.Fatalf("LastSeq = %d, want 25", it.LastSeq())
	}
}

// Truncating the file underneath a live iterator must end iteration
// cleanly — no panic, no error, no record past the new end — regardless of
// where the truncation lands relative to the iterator's read buffer.
func TestIteratorTruncationMidIteration(t *testing.T) {
	for _, keep := range []int{0, 1, 7} {
		t.Run(fmt.Sprintf("keep=%d", keep), func(t *testing.T) {
			path := writeTestJournal(t, t.TempDir(), 40)
			scan, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			it, err := Records(context.Background(), path)
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			// Read a few records, then truncate the file mid-record.
			seen := 0
			for seen < 3 && it.Next() {
				seen++
			}
			var cut int64
			if keep > 0 {
				cut = scan.Valid * int64(keep) / 40
			}
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
			for it.Next() {
				seen++
				if seen > 40 {
					t.Fatal("iterator produced more records than were ever written")
				}
			}
			if err := it.Err(); err != nil {
				t.Fatalf("truncation surfaced as an error: %v", err)
			}
			// Whatever was yielded must be a prefix of the original log.
			if it.LastSeq() != seen {
				t.Fatalf("yielded %d records but LastSeq=%d", seen, it.LastSeq())
			}
		})
	}
}

// A cancelled context stops iteration with the context's error.
func TestIteratorContextCancel(t *testing.T) {
	path := writeTestJournal(t, t.TempDir(), 10)
	ctx, cancel := context.WithCancel(context.Background())
	it, err := Records(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Next() {
		t.Fatal("first Next failed")
	}
	cancel()
	if it.Next() {
		t.Fatal("Next succeeded after cancellation")
	}
	if it.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", it.Err())
	}
}

// OpenAppendStream must replay the same records OpenAppend decodes, repair
// a torn tail the same way, and leave the writer appending at the same
// sequence number.
func TestOpenAppendStreamMatchesOpenAppend(t *testing.T) {
	dir := t.TempDir()
	path := writeTestJournal(t, dir, 12)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0bad"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var streamed []int
	w, count, err := OpenAppendStream(context.Background(), path, Config{}, func(r Record) error {
		streamed = append(streamed, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 12 || len(streamed) != 12 || streamed[11] != 12 {
		t.Fatalf("streamed %d records (count=%d), want 12", len(streamed), count)
	}
	if err := w.Append(TypeIter, map[string]int{"i": 13}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	scan, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn || len(scan.Records) != 13 || scan.Last().Seq != 13 {
		t.Fatalf("after streamed reopen+append: torn=%v records=%d last=%d",
			scan.Torn, len(scan.Records), scan.Last().Seq)
	}
}

// An fn error aborts the streamed open without touching the file.
func TestOpenAppendStreamFnError(t *testing.T) {
	path := writeTestJournal(t, t.TempDir(), 5)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	_, _, err = OpenAppendStream(context.Background(), path, Config{}, func(r Record) error {
		if r.Seq == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("aborted streamed open modified the journal")
	}
}
