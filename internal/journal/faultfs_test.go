package journal

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"vadasa/internal/faultfs"
)

// An append into a volume below the configured headroom is refused
// before any bytes are written — the record is simply absent, not torn
// — and succeeds once space frees.
func TestAppendHeadroomCheck(t *testing.T) {
	dir := t.TempDir()
	faulty := faultfs.NewFaulty(faultfs.OS)
	path := filepath.Join(dir, "job.journal")
	w, err := CreateWith(path, Config{FS: faulty, DiskHeadroom: 1 << 20})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer w.Close()

	if err := w.Append(TypeStart, map[string]int{"a": 1}); err != nil {
		t.Fatalf("append with space: %v", err)
	}
	faulty.SetFree(100) // below the 1 MiB headroom
	err = w.Append(TypeIter, map[string]int{"a": 2})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append under pressure err = %v, want ENOSPC", err)
	}
	faulty.SetFree(-1) // space freed
	if err := w.Append(TypeIter, map[string]int{"a": 3}); err != nil {
		t.Fatalf("append after pressure cleared: %v", err)
	}

	scan, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(scan.Records) != 2 || scan.Torn {
		t.Fatalf("got %d records (torn=%v), want 2 clean", len(scan.Records), scan.Torn)
	}
	if scan.Records[1].Seq != 2 {
		t.Fatalf("second record seq = %d, want 2 (no gap from the refused append)", scan.Records[1].Seq)
	}
}

// A write that hits the injected byte limit leaves a torn tail that
// OpenAppendWith repairs, after which appending resumes cleanly.
func TestTornAppendRepairedThroughFaultyFS(t *testing.T) {
	dir := t.TempDir()
	faulty := faultfs.NewFaulty(faultfs.OS)
	path := filepath.Join(dir, "job.journal")
	w, err := CreateWith(path, Config{FS: faulty})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := w.Append(TypeStart, map[string]string{"job": "x"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	faulty.LimitWrites(20) // the next record tears mid-line
	if err := w.Append(TypeIter, map[string]int{"iter": 0}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn append err = %v, want ENOSPC", err)
	}
	w.Close()
	faulty.Unlimit()

	w2, scan, err := OpenAppendWith(path, Config{FS: faulty})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if len(scan.Records) != 1 || !scan.Torn {
		t.Fatalf("scan = %d records, torn=%v; want 1 record with torn tail", len(scan.Records), scan.Torn)
	}
	if err := w2.Append(TypeIter, map[string]int{"iter": 0}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	final, err := ReadFileIn(faulty, path)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if len(final.Records) != 2 || final.Torn {
		t.Fatalf("final scan = %d records, torn=%v; want 2 clean", len(final.Records), final.Torn)
	}
}

// An EIO on fsync surfaces as an append error; the record is not
// acknowledged even though its bytes may have reached the page cache.
func TestFsyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	faulty := faultfs.NewFaulty(faultfs.OS)
	w, err := CreateWith(filepath.Join(dir, "j"), Config{FS: faulty})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer w.Close()
	faulty.FailSync(1)
	if err := w.Append(TypeStart, 1); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append err = %v, want EIO", err)
	}
	if err := w.Append(TypeStart, 1); err != nil {
		t.Fatalf("append after sync fault: %v", err)
	}
}
