// Package synth provides the datasets of the paper's evaluation: the
// Inflation & Growth fixture of Figure 1, the local-suppression example of
// Figure 5, and seeded generators for the R<t>A<q><dist> dataset family of
// Figure 6 with the real-world-like (W), unbalanced (U) and very unbalanced
// (V) distributions.
package synth

import (
	"strconv"

	"vadasa/internal/mdb"
)

// InflationGrowth returns the 20-tuple fragment of the Bank of Italy
// Inflation and Growth Survey shown in Figure 1. Attribute categories follow
// Section 2.2: Id is a direct identifier; Area, Sector, Employees,
// ResidentialRevenue and ExportRevenue are quasi-identifiers; ExportToDE and
// Growth6mos are non-identifying; Weight is the sampling weight.
func InflationGrowth() *mdb.Dataset {
	attrs := []mdb.Attribute{
		{Name: "Id", Description: "Company Identifier", Category: mdb.Identifier},
		{Name: "Area", Description: "Geographic Area", Category: mdb.QuasiIdentifier},
		{Name: "Sector", Description: "Product Sector", Category: mdb.QuasiIdentifier},
		{Name: "Employees", Description: "Num. of employees", Category: mdb.QuasiIdentifier},
		{Name: "ResidentialRevenue", Description: "Rev. from internal market", Category: mdb.QuasiIdentifier},
		{Name: "ExportRevenue", Description: "Rev. from external market", Category: mdb.QuasiIdentifier},
		{Name: "ExportToDE", Description: "Rev. from DE market", Category: mdb.NonIdentifying},
		{Name: "Growth6mos", Description: "Rev. growth last 6 mths", Category: mdb.NonIdentifying},
		{Name: "Weight", Description: "Sampling Weight", Category: mdb.Weight},
	}
	rows := []struct {
		id       string
		area     string
		sector   string
		emp      string
		res, exp string
		expDE    string
		growth   string
		w        float64
	}{
		{"612276", "North", "Public Service", "50-200", "0-30", "0-30", "30-60", "2", 230},
		{"737536", "South", "Commerce", "201-1000", "0-30", "90+", "0-30", "-1", 190},
		{"971906", "Center", "Commerce", "1000+", "0-30", "30-60", "0-30", "4", 70},
		{"589681", "North", "Textiles", "1000+", "90+", "0-30", "0-30", "30", 60},
		{"419410", "North", "Construction", "1000+", "90+", "0-30", "0-30", "300", 50},
		{"972915", "North", "Other", "1000+", "0-30", "0-30", "30-60", "50", 70},
		{"501118", "North", "Other", "201-1000", "60-90", "90+", "90+", "-20", 300},
		{"815363", "North", "Textiles", "201-1000", "60-90", "30-60", "90+", "2", 230},
		{"490065", "South", "Public Service", "50-200", "0-30", "0-30", "0-30", "12", 123},
		{"415487", "South", "Commerce", "1000+", "0-30", "0-30", "90+", "3", 145},
		{"399087", "South", "Commerce", "50-200", "30-60", "0-30", "30-60", "2", 70},
		{"170034", "Center", "Commerce", "1000+", "60-90", "0-30", "0-30", "45", 90},
		{"724905", "Center", "Construction", "201-1000", "0-30", "30-60", "0-30", "2", 200},
		{"554475", "Center", "Other", "50-200", "0-30", "90+", "0-30", "0", 104},
		{"946251", "Center", "Public Service", "201-1000", "30-60", "90+", "90+", "150", 30},
		{"581077", "North", "Textiles", "50-200", "0-30", "60-90", "30-60", "-20", 160},
		{"765562", "South", "Textiles", "50-200", "0-30", "60-90", "0-30", "-7", 200},
		{"154840", "Center", "Commerce", "201-1000", "0-30", "60-90", "0-30", "4", 220},
		{"600837", "Center", "Construction", "50-200", "0-30", "60-90", "0-30", "20", 190},
		{"220712", "Center", "Financial", "1000+", "30-60", "60-90", "30-60", "-30", 90},
	}
	d := mdb.NewDataset("I&G", attrs)
	for i, r := range rows {
		d.Append(&mdb.Row{
			ID: i + 1,
			Values: []mdb.Value{
				mdb.Const(r.id), mdb.Const(r.area), mdb.Const(r.sector),
				mdb.Const(r.emp), mdb.Const(r.res), mdb.Const(r.exp),
				mdb.Const(r.expDE), mdb.Const(r.growth),
				mdb.Const(strconv.FormatFloat(r.w, 'g', -1, 64)),
			},
			Weight: r.w,
		})
	}
	return d
}

// Figure5 returns the 7-tuple microdata DB of Figure 5a, where every
// attribute is a quasi-identifier (the Id column is a direct identifier and
// the sampling weight is omitted in the paper; weights default to 1 here so
// weight-based heuristics remain usable).
func Figure5() *mdb.Dataset {
	attrs := []mdb.Attribute{
		{Name: "Id", Category: mdb.Identifier},
		{Name: "Area", Category: mdb.QuasiIdentifier},
		{Name: "Sector", Category: mdb.QuasiIdentifier},
		{Name: "Employees", Category: mdb.QuasiIdentifier},
		{Name: "ResidentialRevenue", Category: mdb.QuasiIdentifier},
	}
	rows := [][5]string{
		{"099876", "Roma", "Textiles", "1000+", "0-30"},
		{"765389", "Roma", "Commerce", "1000+", "0-30"},
		{"231654", "Roma", "Commerce", "1000+", "0-30"},
		{"097302", "Roma", "Financial", "1000+", "0-30"},
		{"120967", "Roma", "Financial", "1000+", "0-30"},
		{"232498", "Milano", "Construction", "0-200", "60-90"},
		{"340901", "Torino", "Construction", "0-200", "60-90"},
	}
	d := mdb.NewDataset("fig5", attrs)
	for i, r := range rows {
		d.Append(&mdb.Row{
			ID:     i + 1,
			Values: []mdb.Value{mdb.Const(r[0]), mdb.Const(r[1]), mdb.Const(r[2]), mdb.Const(r[3]), mdb.Const(r[4])},
			Weight: 1,
		})
	}
	return d
}
