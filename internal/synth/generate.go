package synth

import (
	"fmt"
	"math/rand"
	"strconv"

	"vadasa/internal/mdb"
)

// Dist selects the value distribution of a generated dataset (Figure 6).
type Dist int

// Distribution families of the paper's evaluation.
const (
	// DistW fits the real-world Inflation & Growth distribution: a skewed
	// bulk with very few selective quasi-identifier combinations.
	DistW Dist = iota
	// DistU is unbalanced: noticeably more tuples carry very selective
	// combinations and therefore exhibit high disclosure risk.
	DistU
	// DistV is very unbalanced: an even larger share of selective,
	// high-risk combinations.
	DistV
)

// String implements fmt.Stringer.
func (d Dist) String() string {
	switch d {
	case DistW:
		return "W"
	case DistU:
		return "U"
	case DistV:
		return "V"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// rareFraction is the share of tuples drawn uniformly from the full value
// cross-product, producing the selective (risky) combinations that each
// distribution family is characterized by.
func (d Dist) rareFraction() float64 {
	switch d {
	case DistW:
		return 0.0012
	case DistU:
		return 0.015
	default: // DistV
		return 0.05
	}
}

// attrPool is the quasi-identifier pool; Generate takes a prefix of it, so
// R50A4W uses the first four and R50A9W all nine (Figure 7f).
var attrPool = []struct {
	name   string
	values []string
}{
	// Area values are the cities of hierarchy.ItalianGeography so that
	// global recoding can roll generated data up to macro-regions.
	{"Area", []string{
		"Milano", "Roma", "Napoli", "Torino", "Firenze", "Bari", "Venezia",
		"Palermo", "Bologna", "Genova", "Perugia", "Ancona", "Catanzaro"}},
	{"Sector", []string{
		"Commerce", "Public Service", "Textiles", "Construction", "Other",
		"Financial", "Agriculture", "Chemicals", "Machinery", "Food",
		"Energy", "Transport", "Tourism", "Media", "Health", "Education",
		"Mining", "Real Estate"}},
	{"Employees", []string{"0-9", "10-19", "20-49", "50-200", "201-500", "501-1000", "1001-5000", "5000+"}},
	{"ResidentialRevenue", []string{"0-10", "10-20", "20-30", "30-40", "40-50", "50-60", "60-70", "70-80", "80-90", "90+"}},
	{"ExportRevenue", []string{"0-10", "10-20", "20-30", "30-40", "40-50", "50-60", "60-70", "70-80", "80-90", "90+"}},
	{"ExportToDE", []string{"0-10", "10-20", "20-30", "30-40", "40-50", "50-60", "60-70", "70-80", "80-90", "90+"}},
	{"Growth6mos", []string{"<-50", "-50--20", "-20--10", "-10--5", "-5-0", "0-5", "5-10", "10-20", "20-50", "50-100", "100-300", ">300"}},
	{"LegalForm", []string{"SpA", "Srl", "Coop", "Sole", "SApA", "Snc"}},
	{"FoundedEra", []string{"<1900", "1900-29", "1930-49", "1950-69", "1970-79", "1980-89", "1990-99", "2000-09", ">2010"}},
}

// MaxQIs is the largest supported number of quasi-identifiers.
const MaxQIs = 9

// Config parameterizes Generate.
type Config struct {
	Tuples int
	QIs    int // 1..MaxQIs
	Dist   Dist
	Seed   int64
	// PopulationScale is the ratio between the population an identity
	// oracle would hold and the sample; it calibrates sampling weights.
	// Zero selects the default of 30.
	PopulationScale float64
}

// Name returns the paper's dataset naming scheme, e.g. R25A4W for 25k tuples,
// 4 quasi-identifiers, real-world-like distribution.
func (c Config) Name() string {
	k := c.Tuples / 1000
	if c.Tuples%1000 != 0 {
		return fmt.Sprintf("R%dA%d%s", c.Tuples, c.QIs, c.Dist)
	}
	return fmt.Sprintf("R%dA%d%s", k, c.QIs, c.Dist)
}

// Generate builds a synthetic microdata DB. The schema is Id (identifier),
// the first cfg.QIs attributes of the pool (quasi-identifiers) and Weight.
//
// The bulk of the tuples follows a per-attribute skewed categorical
// distribution fitted to look like the Inflation & Growth survey; a
// distribution-dependent fraction is drawn uniformly from the whole value
// cross-product, yielding the selective combinations that carry high
// disclosure risk. Sampling weights estimate the number of population
// entities sharing the tuple's combination: frequent combinations get
// weights around PopulationScale × sample frequency, while the selective
// tail gets small weights — the outliers of Section 2.2.
func Generate(cfg Config) *mdb.Dataset {
	if cfg.QIs < 1 || cfg.QIs > MaxQIs {
		panic(fmt.Sprintf("synth: QIs must be in [1,%d], got %d", MaxQIs, cfg.QIs))
	}
	if cfg.Tuples < 0 {
		panic("synth: negative tuple count")
	}
	scale := cfg.PopulationScale
	if scale == 0 {
		scale = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	attrs := make([]mdb.Attribute, 0, cfg.QIs+2)
	attrs = append(attrs, mdb.Attribute{Name: "Id", Description: "Company Identifier", Category: mdb.Identifier})
	for i := 0; i < cfg.QIs; i++ {
		attrs = append(attrs, mdb.Attribute{Name: attrPool[i].name, Category: mdb.QuasiIdentifier})
	}
	attrs = append(attrs, mdb.Attribute{Name: "Weight", Description: "Sampling Weight", Category: mdb.Weight})
	d := mdb.NewDataset(cfg.Name(), attrs)

	// Skewed per-attribute cumulative distributions for the bulk: value i
	// has probability proportional to decay^i. The bulk only uses the more
	// common half of each domain — and just the top two values of the
	// attributes beyond the fourth, mirroring how supplementary survey
	// attributes (legal form, founding era, ...) are heavily concentrated —
	// while the remaining values appear exclusively in the selective tail,
	// as rare categories do in real surveys. This keeps the joint
	// selectivity of the W family driven by the core attributes, so adding
	// quasi-identifiers stresses the risk estimators (Figure 7f) without
	// exploding the number of risky tuples.
	const decay = 0.30
	cdfs := make([][]float64, cfg.QIs)
	for i := 0; i < cfg.QIs; i++ {
		bulk := (len(attrPool[i].values) + 1) / 2
		if i >= 4 && bulk > 2 {
			bulk = 2
		}
		vals := attrPool[i].values[:bulk]
		cdf := make([]float64, len(vals))
		total, p := 0.0, 1.0
		for j := range vals {
			total += p
			cdf[j] = total
			p *= decay
		}
		for j := range cdf {
			cdf[j] /= total
		}
		cdfs[i] = cdf
	}
	pick := func(cdf []float64) int {
		x := rng.Float64()
		for j, c := range cdf {
			if x <= c {
				return j
			}
		}
		return len(cdf) - 1
	}

	rare := cfg.Dist.rareFraction()
	type rowval struct {
		vals   []int
		isRare bool
	}
	rows := make([]rowval, cfg.Tuples)
	comboFreq := make(map[string]int, cfg.Tuples)
	comboKey := func(vals []int) string {
		k := make([]byte, 0, len(vals)*2)
		for _, v := range vals {
			k = append(k, byte(v), ',')
		}
		return string(k)
	}
	for t := 0; t < cfg.Tuples; t++ {
		vals := make([]int, cfg.QIs)
		isRare := rng.Float64() < rare
		for i := 0; i < cfg.QIs; i++ {
			if isRare {
				vals[i] = rng.Intn(len(attrPool[i].values))
			} else {
				vals[i] = pick(cdfs[i])
			}
		}
		rows[t] = rowval{vals: vals, isRare: isRare}
		comboFreq[comboKey(vals)]++
	}

	for t, rv := range rows {
		f := comboFreq[comboKey(rv.vals)]
		var w float64
		if rv.isRare && f <= 2 {
			// Outlier: low representativeness.
			w = float64(1 + rng.Intn(4))
		} else {
			noise := 0.8 + 0.4*rng.Float64()
			w = float64(int(scale*float64(f)*noise) + 1)
		}
		values := make([]mdb.Value, 0, cfg.QIs+2)
		values = append(values, mdb.Const(fmt.Sprintf("%06d", 100000+t)))
		for i, v := range rv.vals {
			values = append(values, mdb.Const(attrPool[i].values[v]))
		}
		values = append(values, mdb.Const(strconv.FormatFloat(w, 'g', -1, 64)))
		d.Append(&mdb.Row{ID: t + 1, Values: values, Weight: w})
	}
	return d
}

// StandardConfigs returns the dataset family of Figure 6, in the paper's
// order. Seeds are fixed so every run regenerates identical data.
func StandardConfigs() []Config {
	return []Config{
		{Tuples: 6_000, QIs: 4, Dist: DistU, Seed: 1},
		{Tuples: 12_000, QIs: 4, Dist: DistU, Seed: 2},
		{Tuples: 25_000, QIs: 4, Dist: DistW, Seed: 3},
		{Tuples: 25_000, QIs: 4, Dist: DistU, Seed: 4},
		{Tuples: 25_000, QIs: 4, Dist: DistV, Seed: 5},
		{Tuples: 50_000, QIs: 4, Dist: DistW, Seed: 6},
		{Tuples: 50_000, QIs: 4, Dist: DistU, Seed: 7},
		{Tuples: 50_000, QIs: 5, Dist: DistW, Seed: 8},
		{Tuples: 50_000, QIs: 6, Dist: DistW, Seed: 9},
		{Tuples: 50_000, QIs: 8, Dist: DistW, Seed: 10},
		{Tuples: 50_000, QIs: 9, Dist: DistW, Seed: 11},
		{Tuples: 100_000, QIs: 4, Dist: DistU, Seed: 12},
	}
}

// ByName generates the Figure 6 dataset with the given paper name
// (e.g. "R25A4W"), or returns an error for unknown names.
func ByName(name string) (*mdb.Dataset, error) {
	for _, cfg := range StandardConfigs() {
		if cfg.Name() == name {
			return Generate(cfg), nil
		}
	}
	return nil, fmt.Errorf("synth: unknown dataset %q (see Figure 6 for valid names)", name)
}
