package synth

import (
	"fmt"
	"math/rand"
	"strconv"

	"vadasa/internal/mdb"
)

// HouseholdConfig parameterizes the household-survey generator.
type HouseholdConfig struct {
	Households int
	Seed       int64
	// MaxSize bounds household sizes (default 5).
	MaxSize int
}

// Household generates a person-level microdata DB in the style of the Bank
// of Italy "Household income and wealth" survey listed in Section 2: one
// tuple per individual, with the household identifier as a second direct
// identifier. Hierarchical (household) risk — re-identifying one member
// exposes the rest — is the paper's motivating case for cluster risk
// propagation (Section 4.4); link members of a household in an ownership
// graph with share 1 to reproduce it.
//
// The returned map lists the person identifiers of each household.
func Household(cfg HouseholdConfig) (*mdb.Dataset, map[string][]string) {
	if cfg.Households < 1 {
		panic("synth: need at least one household")
	}
	maxSize := cfg.MaxSize
	if maxSize <= 0 {
		maxSize = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	attrs := []mdb.Attribute{
		{Name: "PersonId", Description: "Person identifier", Category: mdb.Identifier},
		{Name: "HouseholdId", Description: "Household identifier", Category: mdb.Identifier},
		{Name: "Municipality", Description: "Municipality of residence", Category: mdb.QuasiIdentifier},
		{Name: "AgeClass", Description: "Age class", Category: mdb.QuasiIdentifier},
		{Name: "Occupation", Description: "Occupation", Category: mdb.QuasiIdentifier},
		{Name: "Education", Description: "Highest education level", Category: mdb.QuasiIdentifier},
		{Name: "IncomeDecile", Description: "Net income decile", Category: mdb.NonIdentifying},
		{Name: "Weight", Description: "Sampling Weight", Category: mdb.Weight},
	}
	municipalities := []string{
		"Milano", "Roma", "Napoli", "Torino", "Firenze", "Bari", "Venezia",
		"Palermo", "Bologna", "Genova", "Perugia", "Ancona", "Catanzaro"}
	ages := []string{"0-17", "18-29", "30-44", "45-59", "60-74", "75+"}
	occupations := []string{
		"Employee", "Self-employed", "Retired", "Student", "Unemployed",
		"Manager", "Teacher", "Farmer", "Craftsman"}
	education := []string{"None", "Primary", "Secondary", "Tertiary"}

	d := mdb.NewDataset(fmt.Sprintf("HH%d", cfg.Households), attrs)
	households := make(map[string][]string, cfg.Households)
	person := 0
	for h := 0; h < cfg.Households; h++ {
		hid := fmt.Sprintf("H%05d", h+1)
		size := 1 + rng.Intn(maxSize)
		// Household members share a municipality (and usually a rare one
		// makes the whole family identifiable together).
		muni := municipalities[rng.Intn(len(municipalities))]
		for m := 0; m < size; m++ {
			person++
			pid := fmt.Sprintf("P%06d", person)
			households[hid] = append(households[hid], pid)
			w := float64(5 + rng.Intn(200))
			d.Append(&mdb.Row{
				ID: person,
				Values: []mdb.Value{
					mdb.Const(pid),
					mdb.Const(hid),
					mdb.Const(muni),
					mdb.Const(ages[rng.Intn(len(ages))]),
					mdb.Const(occupations[rng.Intn(len(occupations))]),
					mdb.Const(education[rng.Intn(len(education))]),
					mdb.Const(strconv.Itoa(1 + rng.Intn(10))),
					mdb.Const(strconv.FormatFloat(w, 'g', -1, 64)),
				},
				Weight: w,
			})
		}
	}
	return d, households
}
