package synth

import (
	"testing"

	"vadasa/internal/mdb"
)

func TestInflationGrowthFixture(t *testing.T) {
	d := InflationGrowth()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(d.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(d.Rows))
	}
	if got := len(d.QuasiIdentifiers()); got != 5 {
		t.Fatalf("quasi-identifiers = %d, want 5", got)
	}
	// Section 2.2: tuple 15 weight 30, tuple 7 weight 300, tuple 4 weight 60.
	if d.Rows[14].Weight != 30 || d.Rows[6].Weight != 300 || d.Rows[3].Weight != 60 {
		t.Errorf("weights of tuples 15/7/4 = %g/%g/%g",
			d.Rows[14].Weight, d.Rows[6].Weight, d.Rows[3].Weight)
	}
	// Tuple 4 is the only North/Textiles/1000+ company (Section 2.2).
	count := 0
	for _, r := range d.Rows {
		if r.Values[1] == mdb.Const("North") && r.Values[2] == mdb.Const("Textiles") &&
			r.Values[3] == mdb.Const("1000+") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("North/Textiles/1000+ count = %d, want 1", count)
	}
}

func TestFigure5Fixture(t *testing.T) {
	d := Figure5()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(d.Rows) != 7 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	freqs := mdb.Frequencies(d, d.QuasiIdentifiers(), mdb.MaybeMatch)
	want := []int{1, 2, 2, 2, 2, 1, 1}
	for i := range want {
		if freqs[i] != want[i] {
			t.Errorf("row %d freq = %d, want %d", i+1, freqs[i], want[i])
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{Tuples: 2000, QIs: 4, Dist: DistU, Seed: 42}
	d := Generate(cfg)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(d.Rows) != 2000 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	if got := len(d.QuasiIdentifiers()); got != 4 {
		t.Fatalf("QIs = %d", got)
	}
	if d.WeightIndex() == -1 {
		t.Fatal("no weight attribute")
	}
	if d.Name != "R2A4U" {
		t.Fatalf("name = %q", d.Name)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Tuples: 500, QIs: 5, Dist: DistV, Seed: 7}
	a, b := Generate(cfg), Generate(cfg)
	for i := range a.Rows {
		if a.Rows[i].Weight != b.Rows[i].Weight {
			t.Fatalf("row %d weights differ", i)
		}
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("row %d value %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Config{Tuples: 500, QIs: 4, Dist: DistW, Seed: 1})
	b := Generate(Config{Tuples: 500, QIs: 4, Dist: DistW, Seed: 2})
	same := 0
	for i := range a.Rows {
		if a.Rows[i].Values[1] == b.Rows[i].Values[1] {
			same++
		}
	}
	if same == len(a.Rows) {
		t.Fatal("different seeds produced identical data")
	}
}

// riskyCount counts tuples violating k-anonymity with k=2, the measure the
// distribution families are defined by: W ≪ U < V.
func riskyCount(d *mdb.Dataset) int {
	n := 0
	for _, f := range mdb.Frequencies(d, d.QuasiIdentifiers(), mdb.MaybeMatch) {
		if f < 2 {
			n++
		}
	}
	return n
}

func TestDistributionFamiliesOrdered(t *testing.T) {
	const n = 25000
	w := riskyCount(Generate(Config{Tuples: n, QIs: 4, Dist: DistW, Seed: 3}))
	u := riskyCount(Generate(Config{Tuples: n, QIs: 4, Dist: DistU, Seed: 4}))
	v := riskyCount(Generate(Config{Tuples: n, QIs: 4, Dist: DistV, Seed: 5}))
	t.Logf("unique tuples at 25k: W=%d U=%d V=%d", w, u, v)
	if !(w < u && u < v) {
		t.Fatalf("risky counts not ordered: W=%d U=%d V=%d", w, u, v)
	}
	if w == 0 {
		t.Fatal("W has no risky tuples at all; anonymization experiments would be vacuous")
	}
	if w > u/2 {
		t.Fatalf("W (%d) not clearly below U (%d)", w, u)
	}
}

func TestGenerateWeightsPositive(t *testing.T) {
	d := Generate(Config{Tuples: 3000, QIs: 6, Dist: DistV, Seed: 9})
	for _, r := range d.Rows {
		if r.Weight < 1 {
			t.Fatalf("row %d weight %g < 1", r.ID, r.Weight)
		}
	}
}

func TestStandardConfigsMatchFigure6(t *testing.T) {
	names := []string{
		"R6A4U", "R12A4U", "R25A4W", "R25A4U", "R25A4V", "R50A4W",
		"R50A4U", "R50A5W", "R50A6W", "R50A8W", "R50A9W", "R100A4U",
	}
	cfgs := StandardConfigs()
	if len(cfgs) != len(names) {
		t.Fatalf("got %d configs, want %d", len(cfgs), len(names))
	}
	for i, cfg := range cfgs {
		if cfg.Name() != names[i] {
			t.Errorf("config %d name = %q, want %q", i, cfg.Name(), names[i])
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("R6A4U")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(d.Rows) != 6000 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	if _, err := ByName("R1A1X"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Tuples: 10, QIs: 0},
		{Tuples: 10, QIs: MaxQIs + 1},
		{Tuples: -1, QIs: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Generate(%+v) did not panic", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestHouseholdGenerator(t *testing.T) {
	d, households := Household(HouseholdConfig{Households: 100, Seed: 4})
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(households) != 100 {
		t.Fatalf("households = %d", len(households))
	}
	total := 0
	for hid, members := range households {
		if len(members) < 1 || len(members) > 5 {
			t.Fatalf("household %s has %d members", hid, len(members))
		}
		total += len(members)
	}
	if total != len(d.Rows) {
		t.Fatalf("members %d != rows %d", total, len(d.Rows))
	}
	// Members of a household share a municipality.
	muni := d.AttrIndex("Municipality")
	hh := d.AttrIndex("HouseholdId")
	byHH := map[string]string{}
	for _, r := range d.Rows {
		h := r.Values[hh].Constant()
		m := r.Values[muni].Constant()
		if prev, ok := byHH[h]; ok && prev != m {
			t.Fatalf("household %s spans municipalities %s and %s", h, prev, m)
		}
		byHH[h] = m
	}
	// Two direct identifiers, four quasi-identifiers.
	ids := 0
	for _, a := range d.Attrs {
		if a.Category == mdb.Identifier {
			ids++
		}
	}
	if ids != 2 || len(d.QuasiIdentifiers()) != 4 {
		t.Fatalf("schema: %d identifiers, %d QIs", ids, len(d.QuasiIdentifiers()))
	}
}

func TestHouseholdPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero households")
		}
	}()
	Household(HouseholdConfig{Households: 0})
}
