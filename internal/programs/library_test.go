package programs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vadasa/internal/datalog"
)

// Every shipped .vada program must parse and stratify; the ones documented
// as warded must pass the wardedness validator. This pins the program
// library in docs/programs to the engine's accepted syntax.
func TestProgramLibrary(t *testing.T) {
	dir := filepath.Join("..", "..", "docs", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading program library: %v", err)
	}
	if len(entries) < 8 {
		t.Fatalf("program library has only %d entries", len(entries))
	}
	// combinations.vada joins labelled-null combination ids across atoms,
	// which the strict wardedness check (correctly) flags; everything else
	// is warded.
	nonWarded := map[string]bool{"combinations.vada": true}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".vada") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		p, err := datalog.Parse(string(src))
		if err != nil {
			t.Errorf("%s does not parse: %v", e.Name(), err)
			continue
		}
		if len(p.Rules) == 0 {
			t.Errorf("%s has no rules", e.Name())
		}
		// Stratification must succeed (runs inside a dry Run on an empty
		// database, which also exercises the orders/safety machinery).
		if _, err := datalog.Run(p, datalog.NewDatabase(), nil); err != nil {
			t.Errorf("%s does not evaluate on an empty database: %v", e.Name(), err)
		}
		if err := datalog.CheckWarded(p); (err == nil) == nonWarded[e.Name()] {
			if err != nil {
				t.Errorf("%s unexpectedly not warded: %v", e.Name(), err)
			} else {
				t.Errorf("%s unexpectedly warded (update the test comment)", e.Name())
			}
		}
	}
}

// The generated risk programs and the shipped 4-QI library files must stay
// in sync.
func TestLibraryMatchesGenerated(t *testing.T) {
	cases := map[string]*datalog.Program{
		"kanonymity.vada":          KAnonymity(4, 2),
		"reidentification.vada":    ReIdentification(4),
		"individualrisk.vada":      IndividualRisk(4),
		"individualposterior.vada": IndividualRiskPosterior(4),
	}
	for name, gen := range cases {
		src, err := os.ReadFile(filepath.Join("..", "..", "docs", "programs", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fromFile, err := datalog.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fromFile.String() != gen.String() {
			t.Errorf("%s diverged from the generated program:\nfile:\n%s\ngenerated:\n%s",
				name, fromFile.String(), gen.String())
		}
	}
}
