package programs

import (
	"strings"
	"testing"

	"vadasa/internal/anon"
	"vadasa/internal/datalog"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

func TestSuppressionProgramShape(t *testing.T) {
	p := SuppressionProgram(3)
	// 3 suppression rules + copy rule + 3 flagged rules.
	if len(p.Rules) != 7 {
		t.Fatalf("got %d rules:\n%s", len(p.Rules), p.String())
	}
	if !strings.Contains(p.String(), "not flagged(I)") {
		t.Fatalf("copy rule missing:\n%s", p.String())
	}
}

func TestSuppressionProgramInventsNull(t *testing.T) {
	d := synth.Figure5()
	qi := d.QuasiIdentifiers()
	edb := datalog.NewDatabase()
	TupleFacts(edb, d)
	edb.Add("suppress2", datalog.Num(1)) // tuple 1, Sector (position 2)
	res, err := datalog.Run(SuppressionProgram(len(qi)), edb, nil)
	if err != nil {
		t.Fatal(err)
	}
	facts := res.Facts("tuplenext")
	if len(facts) != len(d.Rows) {
		t.Fatalf("tuplenext has %d facts, want %d", len(facts), len(d.Rows))
	}
	for _, f := range facts {
		id := int(f[0].NumVal())
		if id == 1 {
			if f[2].Kind() != datalog.KNull {
				t.Fatalf("tuple 1 position 2 = %v, want labelled null", f[2])
			}
			if f[1].Kind() == datalog.KNull || f[3].Kind() == datalog.KNull || f[4].Kind() == datalog.KNull {
				t.Fatal("other positions of tuple 1 disturbed")
			}
		} else {
			for _, v := range f[1 : len(f)-1] {
				if v.Kind() == datalog.KNull {
					t.Fatalf("tuple %d got a null without being flagged", id)
				}
			}
		}
	}
}

// The fully declarative cycle must agree with the native cycle run under the
// matching configuration: standard null semantics, schema-order attribute
// choice, full-sweep batches, dataset order.
func TestDeclarativeCycleMatchesNative(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 120, QIs: 3, Dist: synth.DistV, Seed: 19})
	decl, err := DeclarativeCycle(d, 2, 50)
	if err != nil {
		t.Fatalf("DeclarativeCycle: %v", err)
	}
	native, err := anon.Run(d, anon.Config{
		Assessor:      risk.KAnonymity{K: 2},
		Threshold:     0.5,
		Anonymizer:    anon.LocalSuppression{Choice: anon.AttrSchemaOrder},
		Semantics:     mdb.StandardNulls,
		Order:         anon.OrderByID,
		BatchFraction: 1,
	})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	if decl.NullsInjected != native.NullsInjected {
		t.Fatalf("nulls: declarative %d, native %d", decl.NullsInjected, native.NullsInjected)
	}
	if len(decl.Residual) != len(native.Residual) {
		t.Fatalf("residual: declarative %d, native %d", len(decl.Residual), len(native.Residual))
	}
	// Null positions must coincide row by row.
	for i := range d.Rows {
		for j := range d.Rows[i].Values {
			dn := decl.Dataset.Rows[i].Values[j].IsNull()
			nn := native.Dataset.Rows[i].Values[j].IsNull()
			if dn != nn {
				t.Fatalf("row %d attr %d: declarative null=%v, native null=%v", i, j, dn, nn)
			}
		}
	}
}

func TestDeclarativeCycleConvergesOnSafeData(t *testing.T) {
	// Figure 5 rows 2-5 are 2-anonymous; 1, 6, 7 are not and have no way
	// out under standard semantics: they exhaust and become residual.
	d := synth.Figure5()
	res, err := DeclarativeCycle(d, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residual) != 3 {
		t.Fatalf("residual = %v, want 3 tuples", res.Residual)
	}
	if res.NullsInjected != 3*len(d.QuasiIdentifiers()) {
		t.Fatalf("nulls = %d, want full suppression of 3 tuples", res.NullsInjected)
	}
	// The input is untouched.
	if d.NullCount() != 0 {
		t.Fatal("input mutated")
	}
}

func TestDeclarativeCycleValidation(t *testing.T) {
	noQI := mdb.NewDataset("x", []mdb.Attribute{{Name: "A", Category: mdb.NonIdentifying}})
	if _, err := DeclarativeCycle(noQI, 2, 10); err == nil {
		t.Error("dataset without QIs accepted")
	}
}
