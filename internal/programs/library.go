package programs

import "vadasa/internal/datalog"

// LibraryEntry is one shipped template together with its lint contract: the
// extensional predicates it expects (Inputs), the derived predicates a
// caller reads back (Outputs), and the diagnostic codes it intentionally
// triggers (Allow, with the justification in the entry's comment). The
// library is what `vadalint -library` and the programs lint test iterate,
// so every template stays clean under the analyzer or carries an explicit,
// reviewed waiver.
type LibraryEntry struct {
	Name    string
	Build   func() *datalog.Program
	Inputs  []string
	Outputs []string
	Allow   []string
}

// Library enumerates every shipped template with representative parameters
// (schema width 4, k = 2, population scale 10 — the values the tests and the
// experiments use). Generated templates are instantiated here so the linter
// sees exactly what the engine will evaluate.
func Library() []LibraryEntry {
	return []LibraryEntry{
		{
			Name:    "categorization",
			Build:   Categorization,
			Inputs:  []string{"att", "sim", "expbase"},
			Outputs: []string{"cat"},
			// Rule 1's default invents a labelled-null category for
			// unmatched attributes — the human-in-the-loop queue.
			Allow: []string{"VL001"},
		},
		{
			Name:    "reidentification-q4",
			Build:   func() *datalog.Program { return ReIdentification(4) },
			Inputs:  []string{"tuple"},
			Outputs: []string{"riskout"},
		},
		{
			Name:    "kanonymity-q4-k2",
			Build:   func() *datalog.Program { return KAnonymity(4, 2) },
			Inputs:  []string{"tuple"},
			Outputs: []string{"riskout"},
		},
		{
			Name:    "individualrisk-q4",
			Build:   func() *datalog.Program { return IndividualRisk(4) },
			Inputs:  []string{"tuple"},
			Outputs: []string{"riskout"},
		},
		{
			Name:    "individualposterior-q4",
			Build:   func() *datalog.Program { return IndividualRiskPosterior(4) },
			Inputs:  []string{"tuple"},
			Outputs: []string{"riskout"},
		},
		{
			Name:    "weightestimation-q4",
			Build:   func() *datalog.Program { return WeightEstimation(4, 10) },
			Inputs:  []string{"tuple"},
			Outputs: []string{"weightout"},
		},
		{
			Name:    "control",
			Build:   Control,
			Inputs:  []string{"own"},
			Outputs: []string{"ctr"},
		},
		{
			Name:    "clusterrisk",
			Build:   ClusterRisk,
			Inputs:  []string{"entity", "rel", "risk"},
			Outputs: []string{"riskclust"},
		},
		{
			Name:    "recoding",
			Build:   Recoding,
			Inputs:  []string{"needrecode", "typeof", "subtypeof", "isa", "instof"},
			Outputs: []string{"recode"},
		},
		{
			Name:    "combinations",
			Build:   Combinations,
			Inputs:  []string{"tuplei", "qiord"},
			Outputs: []string{"comb", "inc"},
			// Combination ids are labelled nulls by design (VL001); they
			// recur through comb, so invention sits on a cycle (VL008) —
			// termination comes from the qiord order and engine budgets —
			// and joining null-valued ids across atoms is exactly what the
			// strict wardedness check flags (VL007).
			Allow: []string{"VL001", "VL007", "VL008"},
		},
		{
			Name:    "suppression-q4",
			Build:   func() *datalog.Program { return SuppressionProgram(4) },
			Inputs:  []string{"tuple", "suppress1", "suppress2", "suppress3", "suppress4"},
			Outputs: []string{"tuplenext"},
			// The fresh labelled null replacing a suppressed value is the
			// whole point of Algorithm 7.
			Allow: []string{"VL001"},
		},
	}
}
