package programs_test

import (
	"testing"

	"vadasa/internal/datalog/lint"
	"vadasa/internal/programs"
)

// TestLibraryLintsClean holds every shipped template to the analyzer's
// standard: zero diagnostics beyond the entry's explicitly waived codes.
// A new finding here means either a template regression or a lint pass
// change that needs a reviewed waiver in Library().
func TestLibraryLintsClean(t *testing.T) {
	entries := programs.Library()
	if len(entries) < 10 {
		t.Fatalf("library has only %d entries", len(entries))
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		if seen[e.Name] {
			t.Errorf("duplicate library entry %q", e.Name)
		}
		seen[e.Name] = true
		diags := lint.Check(e.Build(), &lint.Options{
			File:    e.Name,
			Inputs:  e.Inputs,
			Outputs: e.Outputs,
			Allow:   e.Allow,
		})
		for _, d := range diags {
			t.Errorf("%s: unexpected diagnostic: %s", e.Name, lint.FormatText(d))
		}
	}
}

// TestLibraryWaiversUsed keeps Allow lists honest: every waived code must
// actually fire when the waiver is removed, so stale waivers get deleted.
func TestLibraryWaiversUsed(t *testing.T) {
	for _, e := range programs.Library() {
		if len(e.Allow) == 0 {
			continue
		}
		diags := lint.Check(e.Build(), &lint.Options{
			File:    e.Name,
			Inputs:  e.Inputs,
			Outputs: e.Outputs,
		})
		fired := make(map[string]bool, len(diags))
		for _, d := range diags {
			fired[d.Code] = true
		}
		for _, code := range e.Allow {
			if !fired[code] {
				t.Errorf("%s: waiver for %s is stale — the code no longer fires", e.Name, code)
			}
		}
	}
}
