// Package programs ships the paper's algorithms as declarative programs in
// the engine's Vadalog-flavoured syntax, together with encoders from the
// microdata model to extensional facts and decoders for the derived facts.
//
// These are the specification-level twins of the native implementations in
// internal/risk, internal/cluster, internal/hierarchy and
// internal/categorize: agreement tests pin the two execution paths to the
// same semantics, mirroring the paper's split between declarative Vadalog
// programs and the Vadalog system's optimized execution.
//
// Two adaptations from the paper's listings are deliberate. First, the
// engine has no tuple packing/unpacking (* and VSet[..]), so the risk
// programs are generated per schema width with one variable per
// quasi-identifier — the framework stays schema independent because the
// program text is derived from the metadata dictionary, not hand-written per
// dataset. Second, Algorithm 6's combination generation guards recursion
// with `not In(A,Z)`, which is negation through recursion; the equivalent
// stratified formulation below threads an attribute order through the
// combinations instead.
package programs

import (
	"fmt"
	"strings"

	"vadasa/internal/categorize"
	"vadasa/internal/datalog"
	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
)

// mustParse parses one of this package's embedded program templates. The
// templates are fixed text parameterized only by integers (schema width,
// thresholds), so a parse failure here is a bug in this package, never bad
// input — the regexp.MustCompile idiom. User-supplied program text goes
// through datalog.Parse and surfaces as an error instead.
func mustParse(src string) *datalog.Program {
	p, err := datalog.Parse(src)
	if err != nil {
		panic(fmt.Errorf("programs: embedded program: %w", err))
	}
	return p
}

// qiVars renders V1,..,Vq.
func qiVars(q int) string {
	vs := make([]string, q)
	for i := range vs {
		vs[i] = fmt.Sprintf("V%d", i+1)
	}
	return strings.Join(vs, ",")
}

// Categorization is Algorithm 1 verbatim: experience-based inheritance with
// recursive consolidation, the existential default of Rule 1, and the EGD of
// Rule 4. Extensional predicates: att(db, attr), expbase(attr, cat),
// sim(a, b). Conflicts surface as EGD violations; attributes with no similar
// experience keep a labelled null as their category — the human-in-the-loop
// queue.
func Categorization() *datalog.Program {
	return mustParse(`
		cat(M,A,C) :- att(M,A), expbase(A1,C), sim(A,A1).
		expbase(A,C) :- cat(_M,A,C).
		cat(M,A,C) :- att(M,A).
		C1 = C2 :- cat(M,A,C1), cat(M,A,C2).
	`)
}

// ReIdentification is Algorithm 3 for a schema with q quasi-identifiers:
// group tuples by their combination, sum the sampling weights with the
// monotonic msum (tuple id as contributor), and return risk 1/ΣW.
func ReIdentification(q int) *datalog.Program {
	v := qiVars(q)
	return mustParse(fmt.Sprintf(`
		tuplesum(%[1]s,S) :- tuple(I,%[1]s,W), S = msum(W,[I]).
		riskout(I,R) :- tuple(I,%[1]s,_W), tuplesum(%[1]s,S), R = 1 / S.
	`, v))
}

// KAnonymity is Algorithm 4: count occurrences per combination with mcount
// and emit risk 1 below the threshold k, 0 otherwise (the two rules encode
// the paper's case expression).
func KAnonymity(q, k int) *datalog.Program {
	v := qiVars(q)
	return mustParse(fmt.Sprintf(`
		tuplecnt(%[1]s,C) :- tuple(I,%[1]s,_W), C = mcount([I]).
		riskout(I,1) :- tuple(I,%[1]s,_W), tuplecnt(%[1]s,C), C < %[2]d.
		riskout(I,0) :- tuple(I,%[1]s,_W), tuplecnt(%[1]s,C), C >= %[2]d.
	`, v, k))
}

// IndividualRisk is Algorithm 5 with the paper's simple posterior
// assumption: risk F/ΣW from the sample frequency and the weight sum of the
// combination.
func IndividualRisk(q int) *datalog.Program {
	v := qiVars(q)
	return mustParse(fmt.Sprintf(`
		tuplecnt(%[1]s,F) :- tuple(I,%[1]s,_W), F = mcount([I]).
		tuplesum(%[1]s,S) :- tuple(I,%[1]s,W), S = msum(W,[I]).
		riskout(I,R) :- tuple(I,%[1]s,_W), tuplecnt(%[1]s,F), tuplesum(%[1]s,S), R = F / S.
	`, v))
}

// IndividualRiskPosterior refines IndividualRisk with the Benedetti–Franconi
// posterior in its closed form for sample-unique combinations — the case
// that matters for disclosure: for F = 1, E[1/F | f=1] = (p/(1−p))·ln(1/p)
// with p = 1/ΣW; combinations with F > 1 keep the ratio estimate. The log
// built-in is what makes the closed form expressible declaratively.
func IndividualRiskPosterior(q int) *datalog.Program {
	v := qiVars(q)
	return mustParse(fmt.Sprintf(`
		tuplecnt(%[1]s,F) :- tuple(I,%[1]s,_W), F = mcount([I]).
		tuplesum(%[1]s,S) :- tuple(I,%[1]s,W), S = msum(W,[I]).
		riskout(I,R) :- tuple(I,%[1]s,_W), tuplecnt(%[1]s,F), tuplesum(%[1]s,S),
			F == 1, S > 1, P = 1 / S, R = P / (1 - P) * log(1 / P).
		riskout(I,1) :- tuple(I,%[1]s,_W), tuplecnt(%[1]s,F), tuplesum(%[1]s,S),
			F == 1, S <= 1.
		riskout(I,R) :- tuple(I,%[1]s,_W), tuplecnt(%[1]s,F), tuplesum(%[1]s,S),
			F > 1, R = F / S.
	`, v))
}

// WeightEstimation is the declarative twin of risk.EstimateWeights: the
// sampling weight of a tuple is populationScale × the sample frequency of
// its quasi-identifier combination (the estimator Section 2.1 sketches).
func WeightEstimation(q int, populationScale float64) *datalog.Program {
	v := qiVars(q)
	return mustParse(fmt.Sprintf(`
		tuplecnt(%[1]s,C) :- tuple(I,%[1]s,_W), C = mcount([I]).
		weightout(I,W) :- tuple(I,%[1]s,_W0), tuplecnt(%[1]s,C), W = %[2]g * C.
	`, v, populationScale))
}

// Control is the company-control program of Section 4.4: direct majority
// ownership, or joint majority through already-controlled companies — the
// msum-guarded recursion with rel(X,X) assumed, as the paper notes.
func Control() *datalog.Program {
	return mustParse(`
		ctr(X,X) :- own(X,_Y,_W).
		ctr(X,X) :- own(_Y,X,_W).
		rel(X,Y) :- ctr(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
		ctr(X,Y) :- rel(X,Y).
	`)
}

// ClusterRisk is Rule 2 of Algorithm 9: every entity's risk becomes
// 1 − Π(1 − ρ) over its cluster, computed with the monotonic product mprod.
// Extensional predicates: entity(X), rel(X,Y) (control links), risk(X,R).
func ClusterRisk() *datalog.Program {
	return mustParse(`
		samecluster(X,X) :- entity(X).
		link(X,Y) :- rel(X,Y).
		link(X,Y) :- rel(Y,X).
		samecluster(X,Y) :- samecluster(X,Z), link(Z,Y).
		surv(X,S) :- samecluster(X,Y), risk(Y,R), S = mprod(1 - R,[Y]).
		riskclust(X,RC) :- surv(X,S), RC = 1 - S.
	`)
}

// Recoding is Algorithm 8's lookup: climb the type hierarchy one level for a
// value that needs recoding. Extensional predicates: needrecode(attr, value)
// plus the hierarchy facts typeof/subtypeof/isa/instof.
func Recoding() *datalog.Program {
	return mustParse(`
		recode(A,V,Z) :- needrecode(A,V), typeof(A,X), subtypeof(X,Y), isa(V,Z), instof(Z,Y).
	`)
}

// Combinations is the stratified reformulation of Algorithm 6's Rules 2–4:
// for every input tuple it generates one combination (a labelled null) per
// non-empty subset of the quasi-identifier attributes, with inc(A,Z)
// membership facts. Extensional predicates: tuplei(I), qiord(A, N) with N a
// numeric position used to extend combinations in increasing attribute
// order (replacing the paper's non-stratified `not In(A,Z1)` guard).
func Combinations() *datalog.Program {
	return mustParse(`
		comb(Z,I,N), inc(A,Z) :- tuplei(I), qiord(A,N).
		comb(Z,I,N), ext(Z,Z1), inc(A,Z) :- comb(Z1,I,N1), qiord(A,N), N > N1.
		inc(B,Z) :- ext(Z,Z1), inc(B,Z1).
	`)
}

// TupleFacts encodes a dataset as tuple(I, V1..Vq, W) facts over the
// dataset's quasi-identifiers, dropping direct identifiers as Algorithm 2
// does. Labelled nulls map to engine labelled nulls, so the engine's exact
// matching realizes the standard (Skolem) null semantics; the maybe-match
// refinement is an engine-side concern in Vada-SA and lives in the native
// path.
func TupleFacts(db *datalog.Database, d *mdb.Dataset) {
	qi := d.QuasiIdentifiers()
	for _, r := range d.Rows {
		args := make([]datalog.Val, 0, len(qi)+2)
		args = append(args, datalog.Num(float64(r.ID)))
		for _, i := range qi {
			args = append(args, valToEngine(r.Values[i]))
		}
		args = append(args, datalog.Num(r.Weight))
		db.Add("tuple", args...)
	}
}

func valToEngine(v mdb.Value) datalog.Val {
	if v.IsNull() {
		return datalog.NullVal(v.NullID())
	}
	return datalog.Str(v.Constant())
}

// DecodeRisk reads riskout(I, R) facts into a per-row-ID risk map. When the
// engine derived several monotone refinements for the same tuple, the
// maximum — the final value of the monotonic aggregation — wins.
func DecodeRisk(res *datalog.Result) map[int]float64 {
	out := make(map[int]float64)
	for _, f := range res.Facts("riskout") {
		id := int(f[0].NumVal())
		r := f[1].NumVal()
		if cur, ok := out[id]; !ok || r > cur {
			out[id] = r
		}
	}
	return out
}

// CategorizationEDB loads the extensional component of Algorithm 1: the
// attributes of a microdata DB, the experience base, and the ∼ relation
// materialized by evaluating the similarity functions over all pairs of
// names (attributes and experience entries alike, so consolidation chains
// can fire).
func CategorizationEDB(db *datalog.Database, microDB string, attrs []string,
	exp []categorize.Entry, sims []categorize.Similarity) {
	for _, a := range attrs {
		db.Add("att", datalog.Str(microDB), datalog.Str(a))
	}
	names := append([]string(nil), attrs...)
	for _, e := range exp {
		db.Add("expbase", datalog.Str(e.Attr), datalog.Str(e.Category.String()))
		names = append(names, e.Attr)
	}
	for _, a := range names {
		for _, b := range names {
			for _, sim := range sims {
				if sim.Similar(a, b) {
					db.Add("sim", datalog.Str(a), datalog.Str(b))
					break
				}
			}
		}
	}
}

// DecodeCategories reads the derived cat(db, attr, category) facts:
// attributes whose category is still a labelled null go to unknown — the
// Rule 1 placeholders awaiting expert input. Attributes involved in EGD
// violations (conflicts) are excluded from the category map.
func DecodeCategories(res *datalog.Result, microDB string) (cats map[string]mdb.Category, unknown []string, err error) {
	// An attribute is conflicted when it has two distinct constant
	// categories (the EGD violation of Rule 4).
	perAttr := make(map[string][]datalog.Val)
	for _, f := range res.Facts("cat") {
		if f[0].Kind() != datalog.KStr || f[0].StrVal() != microDB {
			continue
		}
		attr := f[1].StrVal()
		perAttr[attr] = append(perAttr[attr], f[2])
	}
	cats = make(map[string]mdb.Category)
	for attr, vals := range perAttr {
		var consts []string
		nullOnly := true
		for _, v := range vals {
			if v.Kind() == datalog.KStr {
				nullOnly = false
				consts = append(consts, v.StrVal())
			}
		}
		switch {
		case nullOnly:
			unknown = append(unknown, attr)
		case len(consts) > 1:
			// Conflicted: leave uncategorized; the violation list on
			// the Result carries the details.
		default:
			c, perr := mdb.ParseCategory(consts[0])
			if perr != nil {
				return nil, nil, fmt.Errorf("programs: %w", perr)
			}
			cats[attr] = c
		}
	}
	return cats, unknown, nil
}

// HierarchyFacts loads a hierarchy knowledge base into the database.
func HierarchyFacts(db *datalog.Database, h *hierarchy.Hierarchy) {
	for _, f := range h.Facts() {
		args := make([]datalog.Val, len(f.Args))
		for i, a := range f.Args {
			args[i] = datalog.Str(a)
		}
		db.Add(f.Pred, args...)
	}
}
