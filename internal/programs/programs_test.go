package programs

import (
	"math"
	"sort"
	"testing"

	"vadasa/internal/categorize"
	"vadasa/internal/cluster"
	"vadasa/internal/datalog"
	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// runProgram evaluates a program over a fresh database loaded by setup.
func runProgram(t *testing.T, p *datalog.Program, setup func(*datalog.Database)) *datalog.Result {
	t.Helper()
	db := datalog.NewDatabase()
	setup(db)
	res, err := datalog.Run(p, db, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// The declarative re-identification risk must agree with the native
// assessor on the Figure 1 fixture (no labelled nulls, so both semantics
// coincide).
func TestReIdentificationAgreesWithNative(t *testing.T) {
	d := synth.InflationGrowth()
	q := len(d.QuasiIdentifiers())
	res := runProgram(t, ReIdentification(q), func(db *datalog.Database) {
		TupleFacts(db, d)
	})
	declarative := DecodeRisk(res)
	native, err := risk.ReIdentification{}.Assess(d, mdb.StandardNulls)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range native {
		id := d.Rows[i].ID
		if got, ok := declarative[id]; !ok || math.Abs(got-r) > 1e-9 {
			t.Errorf("tuple %d: declarative %g, native %g", id, got, r)
		}
	}
}

func TestKAnonymityAgreesWithNative(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 200, QIs: 3, Dist: synth.DistV, Seed: 77})
	q := len(d.QuasiIdentifiers())
	for _, k := range []int{2, 4} {
		res := runProgram(t, KAnonymity(q, k), func(db *datalog.Database) {
			TupleFacts(db, d)
		})
		declarative := DecodeRisk(res)
		native, err := risk.KAnonymity{K: k}.Assess(d, mdb.StandardNulls)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range native {
			id := d.Rows[i].ID
			if got := declarative[id]; got != r {
				t.Errorf("k=%d tuple %d: declarative %g, native %g", k, id, got, r)
			}
		}
	}
}

func TestIndividualRiskAgreesWithNative(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 150, QIs: 3, Dist: synth.DistU, Seed: 5})
	q := len(d.QuasiIdentifiers())
	res := runProgram(t, IndividualRisk(q), func(db *datalog.Database) {
		TupleFacts(db, d)
	})
	declarative := DecodeRisk(res)
	native, err := risk.IndividualRisk{Estimator: risk.Ratio}.Assess(d, mdb.StandardNulls)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range native {
		id := d.Rows[i].ID
		if got := declarative[id]; math.Abs(got-r) > 1e-9 {
			t.Errorf("tuple %d: declarative %g, native %g", id, got, r)
		}
	}
}

// Labelled nulls in the data must behave as the standard Skolem semantics in
// the declarative path: a suppressed value stays unique.
func TestDeclarativeUsesStandardNullSemantics(t *testing.T) {
	d := synth.Figure5()
	d.Rows[0].Values[d.AttrIndex("Sector")] = d.Nulls.Fresh()
	q := len(d.QuasiIdentifiers())
	res := runProgram(t, KAnonymity(q, 2), func(db *datalog.Database) {
		TupleFacts(db, d)
	})
	declarative := DecodeRisk(res)
	native, err := risk.KAnonymity{K: 2}.Assess(d, mdb.StandardNulls)
	if err != nil {
		t.Fatal(err)
	}
	if declarative[1] != 1 || native[0] != 1 {
		t.Fatalf("suppressed tuple risk: declarative %g, native %g; want 1 under standard semantics",
			declarative[1], native[0])
	}
}

func TestControlAgreesWithNative(t *testing.T) {
	g := cluster.NewGraph()
	edges := []struct {
		x, y string
		w    float64
	}{
		{"a", "b", 0.6}, {"a", "e", 0.7}, {"b", "c", 0.3}, {"e", "c", 0.3},
		{"c", "d", 0.9}, {"d", "f", 0.4}, {"x", "f", 0.2},
	}
	for _, e := range edges {
		if err := g.AddOwnership(e.x, e.y, e.w); err != nil {
			t.Fatal(err)
		}
	}
	res := runProgram(t, Control(), func(db *datalog.Database) {
		for _, e := range edges {
			db.Add("own", datalog.Str(e.x), datalog.Str(e.y), datalog.Num(e.w))
		}
	})
	native := g.Controls()
	var nativePairs, declPairs [][2]string
	for x, ys := range native {
		for y := range ys {
			nativePairs = append(nativePairs, [2]string{x, y})
		}
	}
	for _, f := range res.Facts("rel") {
		declPairs = append(declPairs, [2]string{f[0].StrVal(), f[1].StrVal()})
	}
	sortPairs := func(ps [][2]string) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i][0] != ps[j][0] {
				return ps[i][0] < ps[j][0]
			}
			return ps[i][1] < ps[j][1]
		})
	}
	sortPairs(nativePairs)
	sortPairs(declPairs)
	if len(nativePairs) != len(declPairs) {
		t.Fatalf("control relations differ: native %v, declarative %v", nativePairs, declPairs)
	}
	for i := range nativePairs {
		if nativePairs[i] != declPairs[i] {
			t.Fatalf("control relations differ at %d: native %v, declarative %v",
				i, nativePairs[i], declPairs[i])
		}
	}
}

func TestClusterRiskAgreesWithNative(t *testing.T) {
	entities := []string{"a", "b", "c", "x"}
	risks := map[string]float64{"a": 0.5, "b": 0.2, "c": 0.1, "x": 0.3}
	rels := [][2]string{{"a", "b"}, {"b", "c"}}

	res := runProgram(t, ClusterRisk(), func(db *datalog.Database) {
		for _, e := range entities {
			db.Add("entity", datalog.Str(e))
			db.Add("risk", datalog.Str(e), datalog.Num(risks[e]))
		}
		for _, r := range rels {
			db.Add("rel", datalog.Str(r[0]), datalog.Str(r[1]))
		}
	})

	g := cluster.NewGraph()
	for _, r := range rels {
		if err := g.AddOwnership(r[0], r[1], 0.6); err != nil {
			t.Fatal(err)
		}
	}
	native := cluster.CombinedRisk(risks, g.Clusters(entities))

	for _, f := range res.Facts("riskclust") {
		e := f[0].StrVal()
		got := f[1].NumVal()
		if math.Abs(got-native[e]) > 1e-9 {
			t.Errorf("entity %s: declarative %g, native %g", e, got, native[e])
		}
	}
	if got := len(res.Facts("riskclust")); got != len(entities) {
		t.Errorf("riskclust facts = %d, want %d", got, len(entities))
	}
}

func TestRecodingAgreesWithHierarchy(t *testing.T) {
	h := hierarchy.ItalianGeography()
	cities := []string{"Milano", "Torino", "Roma", "Napoli"}
	res := runProgram(t, Recoding(), func(db *datalog.Database) {
		HierarchyFacts(db, h)
		for _, c := range cities {
			db.Add("needrecode", datalog.Str("Area"), datalog.Str(c))
		}
	})
	for _, c := range cities {
		want, _ := h.RollUp("Area", c)
		found := false
		for _, f := range res.Facts("recode") {
			if f[1].StrVal() == c {
				found = true
				if f[2].StrVal() != want {
					t.Errorf("recode(%s) = %s, want %s", c, f[2].StrVal(), want)
				}
			}
		}
		if !found {
			t.Errorf("no recode fact for %s", c)
		}
	}
}

// Algorithm 6's combination generation: 2^q − 1 combinations per tuple, each
// a distinct labelled null with the right membership facts.
func TestCombinationsGeneratesPowerset(t *testing.T) {
	attrs := []string{"area", "sector", "employees"}
	res := runProgram(t, Combinations(), func(db *datalog.Database) {
		db.Add("tuplei", datalog.Str("t1"))
		db.Add("tuplei", datalog.Str("t2"))
		for i, a := range attrs {
			db.Add("qiord", datalog.Str(a), datalog.Num(float64(i+1)))
		}
	})
	// Membership sets per combination id, per tuple.
	members := make(map[string][]string) // null key -> attrs
	for _, f := range res.Facts("inc") {
		members[f[1].Key()] = append(members[f[1].Key()], f[0].StrVal())
	}
	perTuple := make(map[string]map[string]bool) // tuple -> set signatures
	for _, f := range res.Facts("comb") {
		tid := f[1].StrVal()
		if perTuple[tid] == nil {
			perTuple[tid] = make(map[string]bool)
		}
		ms := append([]string(nil), members[f[0].Key()]...)
		sort.Strings(ms)
		sig := ""
		for _, m := range ms {
			sig += m + ","
		}
		perTuple[tid][sig] = true
	}
	for _, tid := range []string{"t1", "t2"} {
		if got := len(perTuple[tid]); got != 7 { // 2^3 - 1
			t.Errorf("tuple %s has %d distinct combinations, want 7: %v",
				tid, got, perTuple[tid])
		}
	}
}

func TestCategorizationProgramMatchesNative(t *testing.T) {
	attrs := []string{"Id", "Area", "Sector", "Employees", "Weight", "FluxCapacitance"}
	exp := []categorize.Entry{
		{Attr: "id", Category: mdb.Identifier},
		{Attr: "geographic area", Category: mdb.QuasiIdentifier},
		{Attr: "product sector", Category: mdb.QuasiIdentifier},
		{Attr: "employees", Category: mdb.QuasiIdentifier},
		{Attr: "sampling weight", Category: mdb.Weight},
	}
	sims := []categorize.Similarity{
		categorize.Exact{}, categorize.Normalized{}, categorize.TokenOverlap{Min: 0.5},
	}

	res := runProgram(t, Categorization(), func(db *datalog.Database) {
		CategorizationEDB(db, "I&G", attrs, exp, sims)
	})
	cats, unknown, err := DecodeCategories(res, "I&G")
	if err != nil {
		t.Fatal(err)
	}

	native := (&categorize.Categorizer{Experience: exp, Sims: sims, Consolidate: true}).Categorize(attrs)
	for attr, want := range native.Categories {
		if got, ok := cats[attr]; !ok || got != want {
			t.Errorf("attr %s: declarative %v (present %v), native %v", attr, got, ok, want)
		}
	}
	if len(unknown) != 1 || unknown[0] != "FluxCapacitance" {
		t.Errorf("unknown = %v, want [FluxCapacitance]", unknown)
	}
	if len(res.Violations) != 0 {
		t.Errorf("unexpected violations: %v", res.Violations)
	}
}

func TestCategorizationProgramDetectsConflicts(t *testing.T) {
	attrs := []string{"code"}
	exp := []categorize.Entry{
		{Attr: "customer code", Category: mdb.Identifier},
		{Attr: "branch code", Category: mdb.QuasiIdentifier},
	}
	sims := []categorize.Similarity{categorize.TokenOverlap{Min: 0.4}}
	res := runProgram(t, Categorization(), func(db *datalog.Database) {
		CategorizationEDB(db, "db", attrs, exp, sims)
	})
	if len(res.Violations) == 0 {
		t.Fatal("conflicting categorization produced no EGD violation")
	}
	cats, _, err := DecodeCategories(res, "db")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cats["code"]; ok {
		t.Error("conflicted attribute categorized anyway")
	}
}

// The derived risk facts are explainable down to the extensional component.
func TestRiskProvenance(t *testing.T) {
	d := synth.Figure5()
	q := len(d.QuasiIdentifiers())
	res := runProgram(t, KAnonymity(q, 2), func(db *datalog.Database) {
		TupleFacts(db, d)
	})
	ex, err := res.Explain("riskout", datalog.Num(1), datalog.Num(1))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(ex) == 0 {
		t.Fatal("empty explanation")
	}
}

// The declarative posterior program must match the native PosteriorSeries
// estimator on sample-unique combinations (closed form for f=1) and the
// ratio estimator elsewhere.
func TestIndividualRiskPosteriorAgreesWithNative(t *testing.T) {
	d := synth.InflationGrowth() // every combination unique, weights > 1
	q := len(d.QuasiIdentifiers())
	res := runProgram(t, IndividualRiskPosterior(q), func(db *datalog.Database) {
		TupleFacts(db, d)
	})
	declarative := DecodeRisk(res)
	native, err := risk.IndividualRisk{Estimator: risk.PosteriorSeries}.Assess(d, mdb.StandardNulls)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range native {
		id := d.Rows[i].ID
		got, ok := declarative[id]
		if !ok || math.Abs(got-r) > 1e-9 {
			t.Errorf("tuple %d: declarative %g, native %g", id, got, r)
		}
	}
}

func TestIndividualRiskPosteriorMixedFrequencies(t *testing.T) {
	d := synth.Generate(synth.Config{Tuples: 300, QIs: 3, Dist: synth.DistV, Seed: 23})
	q := len(d.QuasiIdentifiers())
	res := runProgram(t, IndividualRiskPosterior(q), func(db *datalog.Database) {
		TupleFacts(db, d)
	})
	declarative := DecodeRisk(res)
	groups := mdb.ComputeGroups(d, d.QuasiIdentifiers(), mdb.StandardNulls)
	ratio, err := risk.IndividualRisk{Estimator: risk.Ratio}.Assess(d, mdb.StandardNulls)
	if err != nil {
		t.Fatal(err)
	}
	posterior, err := risk.IndividualRisk{Estimator: risk.PosteriorSeries}.Assess(d, mdb.StandardNulls)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Rows {
		id := d.Rows[i].ID
		want := ratio[i]
		if groups[i].Freq == 1 {
			want = posterior[i]
		}
		if got := declarative[id]; math.Abs(got-want) > 1e-9 {
			t.Errorf("tuple %d (f=%d): declarative %g, want %g",
				id, groups[i].Freq, got, want)
		}
	}
}

func TestWeightEstimationAgreesWithNative(t *testing.T) {
	d := synth.Figure5()
	q := len(d.QuasiIdentifiers())
	res := runProgram(t, WeightEstimation(q, 30), func(db *datalog.Database) {
		TupleFacts(db, d)
	})
	native := synth.Figure5()
	if err := risk.EstimateWeights(native, 30); err != nil {
		t.Fatal(err)
	}
	got := make(map[int]float64)
	for _, f := range res.Facts("weightout") {
		got[int(f[0].NumVal())] = f[1].NumVal()
	}
	for _, r := range native.Rows {
		if got[r.ID] != r.Weight {
			t.Errorf("tuple %d: declarative %g, native %g", r.ID, got[r.ID], r.Weight)
		}
	}
}
