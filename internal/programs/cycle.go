package programs

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"vadasa/internal/datalog"
	"vadasa/internal/mdb"
)

// This file closes the loop on the paper's central claim: the anonymization
// cycle of Algorithm 2 with the local suppression of Algorithm 7 can run
// entirely as reasoning. Each iteration is one chase: the k-anonymity
// program derives riskout facts, suppression rules with existential heads
// replace flagged quasi-identifier values by invented labelled nulls, and
// the derived tuplenext facts become the next iteration's extensional
// component. The engine's labelled nulls follow the standard (Skolem)
// semantics, so the declarative cycle is the paper's Figure 7c baseline; the
// maybe-match refinement lives in the native engine layer (internal/mdb).

// SuppressionProgram generates Algorithm 7 for a schema with q
// quasi-identifiers: for every attribute position j there is a rule that
// rewrites a tuple flagged by suppress<j>(I) into tuplenext with a fresh
// labelled null at position j; unflagged tuples are copied. One tuple is
// suppressed on at most one position per pass (the cycle's “minimum amount
// of information” step).
func SuppressionProgram(q int) *datalog.Program {
	var b strings.Builder
	vars := make([]string, q)
	for i := range vars {
		vars[i] = fmt.Sprintf("V%d", i+1)
	}
	all := strings.Join(vars, ",")
	for j := 0; j < q; j++ {
		head := make([]string, q)
		copy(head, vars)
		head[j] = "Z" // existential: the invented labelled null
		body := make([]string, q)
		copy(body, vars)
		body[j] = "_" + vars[j] // suppressed value: read but never propagated
		fmt.Fprintf(&b, "tuplenext(I,%s,W) :- tuple(I,%s,W), suppress%d(I).\n",
			strings.Join(head, ","), strings.Join(body, ","), j+1)
	}
	fmt.Fprintf(&b, "tuplenext(I,%s,W) :- tuple(I,%s,W), not flagged(I).\n", all, all)
	for j := 0; j < q; j++ {
		fmt.Fprintf(&b, "flagged(I) :- suppress%d(I).\n", j+1)
	}
	return mustParse(b.String())
}

// CycleResult reports a declarative anonymization run.
type CycleResult struct {
	Dataset       *mdb.Dataset
	Iterations    int
	NullsInjected int
	// Residual lists tuples still risky when no further suppression was
	// possible (all quasi-identifiers already null).
	Residual []int
}

// DeclarativeCycle runs the anonymization cycle for k-anonymity with local
// suppression purely through reasoning passes, on a copy of d. Risky tuples
// have their leftmost non-null quasi-identifier suppressed each iteration
// (the binding order of Algorithm 7 without a routing strategy). Intended
// for small datasets: every iteration re-reasons over the whole microdata
// DB.
func DeclarativeCycle(d *mdb.Dataset, k, maxIter int) (*CycleResult, error) {
	return DeclarativeCycleContext(context.Background(), d, k, maxIter)
}

// DeclarativeCycleContext is DeclarativeCycle with cancellation: the context
// is threaded into every chase, so a cancelled request stops between (and
// inside) reasoning passes instead of running the cycle to convergence.
func DeclarativeCycleContext(ctx context.Context, d *mdb.Dataset, k, maxIter int) (*CycleResult, error) {
	work := d.Clone()
	qi := work.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("programs: dataset %q has no quasi-identifiers", d.Name)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	q := len(qi)
	riskProg := KAnonymity(q, k)
	suppProg := SuppressionProgram(q)
	res := &CycleResult{}
	nullsBefore := work.NullCount()

	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return nil, fmt.Errorf("programs: declarative cycle did not converge in %d iterations", maxIter)
		}
		// Risk pass.
		edb := datalog.NewDatabase()
		TupleFacts(edb, work)
		riskRes, err := datalog.RunContext(ctx, riskProg, edb, nil)
		if err != nil {
			return nil, fmt.Errorf("programs: risk pass: %w", err)
		}
		risks := DecodeRisk(riskRes)
		var risky []int
		for id, r := range risks {
			if r > 0.5 {
				risky = append(risky, id)
			}
		}
		sort.Ints(risky)
		if len(risky) == 0 {
			res.Iterations = iter
			break
		}

		// Suppression pass: flag each risky tuple on its leftmost
		// non-null quasi-identifier; exhausted tuples become residual.
		byID := make(map[int]*mdb.Row, len(work.Rows))
		for _, r := range work.Rows {
			byID[r.ID] = r
		}
		flags := datalog.NewDatabase()
		TupleFacts(flags, work)
		progress := false
		var residual []int
		for _, id := range risky {
			row := byID[id]
			pos := -1
			for j, a := range qi {
				if !row.Values[a].IsNull() {
					pos = j
					break
				}
			}
			if pos < 0 {
				residual = append(residual, id)
				continue
			}
			flags.Add(fmt.Sprintf("suppress%d", pos+1), datalog.Num(float64(id)))
			progress = true
		}
		if !progress {
			res.Iterations = iter
			res.Residual = residual
			break
		}
		suppRes, err := datalog.RunContext(ctx, suppProg, flags, nil)
		if err != nil {
			return nil, fmt.Errorf("programs: suppression pass: %w", err)
		}
		if err := decodeTuples(suppRes, work, qi); err != nil {
			return nil, err
		}
	}
	res.Dataset = work
	res.NullsInjected = work.NullCount() - nullsBefore
	return res, nil
}

// decodeTuples replaces the quasi-identifier values of work with the derived
// tuplenext facts, mapping engine labelled nulls to dataset labelled nulls.
func decodeTuples(res *datalog.Result, work *mdb.Dataset, qi []int) error {
	byID := make(map[int]*mdb.Row, len(work.Rows))
	for _, r := range work.Rows {
		byID[r.ID] = r
	}
	seen := make(map[int]bool, len(work.Rows))
	// Engine null ids are fresh per run; map each to a fresh dataset null
	// so symbols stay distinct across iterations.
	nullMap := make(map[uint64]mdb.Value)
	for _, f := range res.Facts("tuplenext") {
		id := int(f[0].NumVal())
		row, ok := byID[id]
		if !ok {
			return fmt.Errorf("programs: derived tuple for unknown id %d", id)
		}
		if seen[id] {
			return fmt.Errorf("programs: tuple %d derived twice", id)
		}
		seen[id] = true
		for j, a := range qi {
			v := f[1+j]
			switch v.Kind() {
			case datalog.KStr:
				row.Values[a] = mdb.Const(v.StrVal())
			case datalog.KNull:
				mapped, ok := nullMap[v.NullID()]
				if !ok {
					mapped = work.Nulls.Fresh()
					nullMap[v.NullID()] = mapped
				}
				row.Values[a] = mapped
			default:
				return fmt.Errorf("programs: unexpected value %v in derived tuple %d", v, id)
			}
		}
	}
	if len(seen) != len(work.Rows) {
		return fmt.Errorf("programs: derived %d tuples, dataset has %d", len(seen), len(work.Rows))
	}
	return nil
}
