package stream

import (
	"encoding/json"
	"fmt"

	"vadasa/internal/anon"
	"vadasa/internal/mdb"
)

// attrWire is the journaled schema form; categories travel in their textual
// form (mdb.ParseCategory round-trips them).
type attrWire struct {
	Name     string `json:"name"`
	Category string `json:"category"`
}

// createPayload is the first record of every stream journal. It makes the
// journal self-describing: recovery rebuilds the window schema, the
// threshold and the null semantics from it, and the server rebuilds the
// risk measure from the opaque Meta it journaled at creation.
type createPayload struct {
	Stream    string          `json:"stream"`
	Attrs     []attrWire      `json:"attrs"`
	Threshold float64         `json:"threshold"`
	Semantics string          `json:"semantics"`
	Meta      json.RawMessage `json:"meta,omitempty"`
}

func makeCreatePayload(id string, opts Options) createPayload {
	p := createPayload{
		Stream:    id,
		Threshold: opts.Threshold,
		Semantics: opts.Semantics.String(),
		Meta:      opts.Meta,
	}
	for _, a := range opts.Attrs {
		p.Attrs = append(p.Attrs, attrWire{Name: a.Name, Category: a.Category.String()})
	}
	return p
}

func (p createPayload) attrs() ([]mdb.Attribute, error) {
	out := make([]mdb.Attribute, 0, len(p.Attrs))
	for _, a := range p.Attrs {
		cat, err := mdb.ParseCategory(a.Category)
		if err != nil {
			return nil, fmt.Errorf("stream: journaled schema: %w", err)
		}
		out = append(out, mdb.Attribute{Name: a.Name, Category: cat})
	}
	return out, nil
}

func (p createPayload) semantics() (mdb.Semantics, error) {
	switch p.Semantics {
	case mdb.MaybeMatch.String():
		return mdb.MaybeMatch, nil
	case mdb.StandardNulls.String():
		return mdb.StandardNulls, nil
	}
	return 0, fmt.Errorf("stream: journaled semantics %q unknown", p.Semantics)
}

// batchPayload commits one ingestion batch. Rows carry the raw textual
// cells, exactly as validated — replay re-parses them through the same
// code path the live append used.
type batchPayload struct {
	BatchID string     `json:"batch"`
	Rows    [][]string `json:"rows"`
}

// withdrawPayload removes rows by their window-stable IDs.
type withdrawPayload struct {
	RowIDs []int `json:"rows"`
}

// decisionRecord is the wire form of anon.Decision: values travel in their
// textual form (constants verbatim, labelled nulls as ⊥i) because
// mdb.Value is opaque to JSON. Replaying New through mdb.ParseValue with
// Observe on the window allocator reproduces the exact null identities, so
// a recovered window is value-identical to the crashed one.
type decisionRecord struct {
	RowID        int     `json:"row"`
	Attr         string  `json:"attr"`
	Old          string  `json:"old"`
	New          string  `json:"new"`
	Method       string  `json:"method"`
	Risk         float64 `json:"risk"`
	Iteration    int     `json:"iter"`
	AffectedRows int     `json:"affected"`
}

func encodeDecision(d anon.Decision) decisionRecord {
	return decisionRecord{
		RowID:        d.RowID,
		Attr:         d.Attr,
		Old:          d.Old.String(),
		New:          d.New.String(),
		Method:       d.Method,
		Risk:         d.Risk,
		Iteration:    d.Iteration,
		AffectedRows: d.AffectedRows,
	}
}

// anonPayload commits one release-gate suppression iteration: the batch of
// decisions a single risk evaluation motivated. Journaled before the next
// evaluation, so a crash mid-gate resumes from a committed prefix of the
// suppression sequence.
type anonPayload struct {
	Release   int              `json:"release"`
	Iteration int              `json:"iter"`
	Decisions []decisionRecord `json:"decisions"`
}

// intentPayload declares a release before its bytes exist on disk: the
// sequence number, the window size, and the SHA-256 of the exact CSV to be
// published. Recovery after a crash between intent and publish regenerates
// the bytes from the replayed window and refuses to publish on a digest
// mismatch — the intent is a promise of specific bytes, not of "whatever
// the window looks like now".
type intentPayload struct {
	Release int    `json:"release"`
	Rows    int    `json:"rows"`
	Digest  string `json:"digest"`
}

// publishPayload commits a publication: the named file is durable and
// carries the intent's digest.
type publishPayload struct {
	Release int    `json:"release"`
	File    string `json:"file"`
	Digest  string `json:"digest"`
}

// ackPayload retires a published release.
type ackPayload struct {
	Release int `json:"release"`
}

// checkpointPayload marks a clean drain with counter snapshots; recovery
// cross-checks them against the replayed state.
type checkpointPayload struct {
	Batches  int `json:"batches"`
	Rows     int `json:"rows"`
	Releases int `json:"releases"`
	Acked    int `json:"acked"`
}
