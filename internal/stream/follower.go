package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"

	"vadasa/internal/faultfs"
	"vadasa/internal/govern"
	"vadasa/internal/journal"
	"vadasa/internal/mdb"
)

// Follower is a read-only replica of a stream: it replays the mirrored
// journal through the exact apply functions the live paths and startup
// recovery use — there is no second state machine — but it never writes.
// It holds no journal writer, never completes a pending intent (that is
// the promoted primary's job, done through the normal Open path), and
// always scores risk through the measure's full reference path, which is
// bit-identical to the primary's incremental scoring by the risk layer's
// tested property.
//
// A standby keeps one Follower per mirrored stream WAL: every shipped
// frame is appended to the local file first, then fed to Apply, so the
// file on disk is always at or ahead of the in-memory state and a
// standby restart simply re-replays the file.
type Follower struct {
	s   *Stream
	seq int // journal sequence of the last applied record
	// relBytes is the published release's content, snapshotted at the
	// instant the publish record was applied — the one point where the
	// replayed window provably matches the journaled digest. The window
	// may keep moving under later appends while the release awaits its
	// ack; the snapshot is what keeps the mirror able to serve and
	// materialize the release regardless.
	relBytes []byte
}

// OpenFollower replays the mirrored journal at path into a read-only
// window. Unlike Open it tolerates a pending intent (the frame stream
// simply stopped between intent and publish) and never appends; opts needs
// the same Assessor/Threshold the primary used — on a server, rebuilt from
// the create record's Meta exactly as startup recovery does.
func OpenFollower(ctx context.Context, id, path string, opts Options) (*Follower, error) {
	if opts.Assessor == nil {
		return nil, fmt.Errorf("stream: Options.Assessor is required")
	}
	if opts.Threshold <= 0 {
		return nil, fmt.Errorf("stream: Options.Threshold must be positive, got %g", opts.Threshold)
	}
	s := &Stream{
		id:      id,
		path:    path,
		dir:     filepath.Dir(path),
		opts:    opts,
		fs:      opts.FS,
		gov:     opts.Governor,
		rowPos:  make(map[int]int),
		batches: make(map[string]bool),
	}
	if s.fs == nil {
		s.fs = faultfs.OS
	}
	f := &Follower{s: s}
	it, err := journal.RecordsIn(ctx, s.fs, path)
	if err != nil {
		return nil, fmt.Errorf("stream %s: opening follower: %w", id, err)
	}
	defer it.Close()
	for it.Next() {
		if err := s.replay(it.Record()); err != nil {
			f.releaseCharges()
			return nil, fmt.Errorf("stream %s: follower replay: %w", id, err)
		}
		f.snapshotRelease(it.Record().Type)
	}
	if err := it.Err(); err != nil {
		f.releaseCharges()
		return nil, fmt.Errorf("stream %s: follower replay: %w", id, err)
	}
	f.seq = it.LastSeq()
	if s.d == nil {
		return nil, fmt.Errorf("stream %s: mirrored journal holds no create record", id)
	}
	// Deliberately no initAssessor: the follower scores through the full
	// reference path only (risk.AssessContext), so it never maintains a
	// group index across replayed suppressions and withdrawals.
	return f, nil
}

// Apply replays one freshly shipped record. The caller (the standby) has
// already validated the frame and made it durable in the mirrored file;
// Apply requires records in strict sequence.
func (f *Follower) Apply(ctx context.Context, rec journal.Record) error {
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if rec.Seq != f.seq+1 {
		return fmt.Errorf("stream %s: follower at seq %d cannot apply record %d", s.id, f.seq, rec.Seq)
	}
	if err := s.replay(rec); err != nil {
		return err
	}
	f.snapshotRelease(rec.Type)
	f.seq = rec.Seq
	// The risk vector is stale until someone asks: Digest and Status
	// recompute on demand through the full path.
	s.current = false
	return nil
}

// Seq is the journal sequence of the last applied record.
func (f *Follower) Seq() int {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	return f.seq
}

// ID returns the stream's name.
func (f *Follower) ID() string { return f.s.id }

// Meta returns the opaque metadata journaled at creation.
func (f *Follower) Meta() json.RawMessage { return f.s.opts.Meta }

// Status reports the replayed state, exactly like Stream.Status.
func (f *Follower) Status(ctx context.Context) Status { return f.s.Status(ctx) }

// Digest computes the state digest at the follower's replay position —
// the standby's half of divergence detection.
func (f *Follower) Digest(ctx context.Context) (*Digest, error) {
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.digestLocked(ctx, f.seq)
}

// Published returns the currently published, unacked release (nil if none).
func (f *Follower) Published() *ReleaseInfo { return f.s.Published() }

// snapshotRelease keeps f.relBytes in step with the replay: a publish
// record freezes the window's bytes (verified against the journaled
// digest), an ack drops them. Called under s.mu with the record already
// applied. A snapshot that contradicts its digest is discarded —
// ReleaseBytes will then refuse to serve, which is the divergence signal.
func (f *Follower) snapshotRelease(typ journal.Type) {
	s := f.s
	switch typ {
	case recPublish:
		f.relBytes = nil
		if s.published == nil {
			return
		}
		var buf bytes.Buffer
		if err := mdb.WriteCSV(&buf, s.d); err != nil {
			return
		}
		if digestBytes(buf.Bytes()) == s.published.Digest {
			f.relBytes = buf.Bytes()
		}
	case recAck:
		f.relBytes = nil
	}
}

// ReleaseBytes returns the published release's bytes, verified against the
// journaled digest: a standby serves read-only release downloads without
// ever having seen the primary's release file. The bytes come from the
// snapshot taken when the publish record was applied — the window itself
// may have moved under later appends while the release awaits its ack.
func (f *Follower) ReleaseBytes() ([]byte, error) {
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.published == nil {
		return nil, fmt.Errorf("stream %s: no published release", s.id)
	}
	b := f.relBytes
	if b == nil {
		// No snapshot survived (or it contradicted the digest at apply
		// time): fall back to the window, valid only while nothing has
		// been appended since the publish.
		var buf bytes.Buffer
		if err := mdb.WriteCSV(&buf, s.d); err != nil {
			return nil, fmt.Errorf("stream %s: re-encoding release %d: %w", s.id, s.published.Seq, err)
		}
		b = buf.Bytes()
	}
	if got := digestBytes(b); got != s.published.Digest {
		return nil, fmt.Errorf("stream %s: regenerated release %d digest %s contradicts journaled %s",
			s.id, s.published.Seq, got, s.published.Digest)
	}
	return append([]byte(nil), b...), nil
}

// MaterializePublished writes the published release's file into dir when it
// is absent or stale. Journals ship; release files do not — but a promotion
// recovers the mirror through stream.Open, which requires the file a publish
// record names to be intact. The bytes come from the publish-time snapshot,
// so materialization stays exact even after later appends have moved the
// window. Idempotent; no-op without a published release.
func (f *Follower) MaterializePublished(dir string) error {
	pub := f.Published()
	if pub == nil {
		return nil
	}
	path := filepath.Join(dir, pub.File)
	if b, err := f.s.fs.ReadFile(path); err == nil && digestBytes(b) == pub.Digest {
		return nil
	}
	b, err := f.ReleaseBytes()
	if err != nil {
		return fmt.Errorf("stream %s: materializing release %d: %w", f.s.id, pub.Seq, err)
	}
	if err := f.s.writeFileDurable(path, b); err != nil {
		return fmt.Errorf("stream %s: materializing release %d: %w", f.s.id, pub.Seq, err)
	}
	return nil
}

// Close releases the follower's governor charges. It never journals — a
// follower owns no writer. Idempotent.
func (f *Follower) Close() error {
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	f.releaseCharges()
	return nil
}

func (f *Follower) releaseCharges() {
	s := f.s
	s.gov.Release(govern.Memory, s.memCharged+s.idxCharged)
	s.memCharged, s.idxCharged = 0, 0
}
