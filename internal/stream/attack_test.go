package stream

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"vadasa/internal/attack"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// attackRows is the window for the release-vs-attack validation: two
// weight-2 twins (re-identification risk 1/4), two weight-1 twins (risk
// 1/2, exactly at the gate threshold), and a weight-1 singleton whose risk
// 1 forces the gate to suppress before it can publish.
func attackRows() [][]string {
	return [][]string{
		{"a1", "s0", "r0", "z0", "2"},
		{"a2", "s0", "r0", "z0", "2"},
		{"b1", "s1", "r1", "z1", "1"},
		{"b2", "s1", "r1", "z1", "1"},
		{"x1", "s2", "r0", "z2", "1"},
	}
}

func attackDataset(t *testing.T, rows [][]string) *mdb.Dataset {
	t.Helper()
	var b strings.Builder
	b.WriteString("Id,Sector,Region,Size,Weight\n")
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	d, err := mdb.ReadCSV(strings.NewReader(b.String()), "orig", testAttrs())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// A published stream release must hold up against the linkage attacker of
// Section 2.2: on the original window the attacker's expected success
// equals the computed re-identification risk tuple for tuple, and on the
// gated release no tuple's expected success exceeds the threshold the gate
// enforced — the empirical counterpart of the risk computation the release
// decision was based on.
func TestReleaseSurvivesLinkageAttack(t *testing.T) {
	ctx := context.Background()
	rows := attackRows()
	orig := attackDataset(t, rows)

	// The oracle is the population implied by the original window's exact
	// weights — built before anonymization, as an external source would be.
	oracle, truth, err := attack.Build(orig, 1000)
	if err != nil {
		t.Fatal(err)
	}
	before, err := oracle.Run(orig, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	risks, err := risk.ReIdentification{}.Assess(orig, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range before.PerRow {
		if math.Abs(out.Expected-risks[i]) > 1e-9 {
			t.Errorf("tuple %d: expected attack success %g, computed risk %g",
				out.RowID, out.Expected, risks[i])
		}
	}

	// Stream the same window and publish through the gate.
	opts := testOptions()
	opts.Assessor = risk.ReIdentification{}
	s := openTest(t, t.TempDir(), opts)
	defer s.Close(ctx)
	if _, err := s.Append(ctx, "b1", rows); err != nil {
		t.Fatal(err)
	}
	info, err := s.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Suppressions == 0 {
		t.Fatalf("the gate published the risk-1 singleton without suppressing: %+v", info)
	}
	b, err := s.ReleaseBytes(info)
	if err != nil {
		t.Fatal(err)
	}
	released, err := mdb.ReadCSV(bytes.NewReader(b), "released", testAttrs())
	if err != nil {
		t.Fatal(err)
	}

	after, err := oracle.Run(released, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The gate's promise, validated empirically: no released tuple is
	// easier to re-identify than the threshold allows, none got easier
	// than before, and the window's total exposure went down.
	for i, out := range after.PerRow {
		if out.Expected > opts.Threshold+1e-9 {
			t.Errorf("released tuple %d: expected attack success %g exceeds threshold %g",
				out.RowID, out.Expected, opts.Threshold)
		}
		if out.Expected > before.PerRow[i].Expected+1e-12 {
			t.Errorf("released tuple %d got easier to attack: %g -> %g",
				out.RowID, before.PerRow[i].Expected, out.Expected)
		}
	}
	if after.ExpectedSuccesses >= before.ExpectedSuccesses {
		t.Fatalf("release did not reduce expected re-identifications: %g -> %g",
			before.ExpectedSuccesses, after.ExpectedSuccesses)
	}
	// The suppressed singleton specifically: certainty before, diluted
	// into the whole population after.
	last := len(after.PerRow) - 1
	if before.PerRow[last].Expected != 1 {
		t.Fatalf("singleton expected success before = %g, want 1", before.PerRow[last].Expected)
	}
	if after.PerRow[last].Expected >= 0.5 {
		t.Fatalf("singleton expected success after = %g, want < 0.5", after.PerRow[last].Expected)
	}
}
