package stream

import (
	"context"
	"encoding/json"
	"fmt"

	"vadasa/internal/faultfs"
	"vadasa/internal/govern"
	"vadasa/internal/journal"
	"vadasa/internal/mdb"
)

// Info is the self-describing header of a stream journal, read by Peek.
type Info struct {
	ID        string
	Attrs     []mdb.Attribute
	Threshold float64
	Semantics mdb.Semantics
	Meta      json.RawMessage
}

// Peek reads just the create record of the journal at path — enough for a
// recovering server to rebuild the stream's Options (the risk measure lives
// in Meta) before calling Open, without replaying the whole WAL.
func Peek(ctx context.Context, fsys faultfs.FS, path string) (*Info, error) {
	it, err := journal.RecordsIn(ctx, fsys, path)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	if !it.Next() {
		if err := it.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stream: %s: journal has no create record", path)
	}
	rec := it.Record()
	if rec.Type != recCreate {
		return nil, fmt.Errorf("stream: %s: first record is %q, want %q", path, rec.Type, recCreate)
	}
	var p createPayload
	if err := json.Unmarshal(rec.Payload, &p); err != nil {
		return nil, fmt.Errorf("stream: %s: decoding create record: %w", path, err)
	}
	attrs, err := p.attrs()
	if err != nil {
		return nil, err
	}
	sem, err := p.semantics()
	if err != nil {
		return nil, err
	}
	return &Info{ID: p.Stream, Attrs: attrs, Threshold: p.Threshold, Semantics: sem, Meta: p.Meta}, nil
}

// reopen replays the journal record by record — through the same apply
// functions the live paths use, which is what makes the recovered window
// bit-identical to the crashed one — then completes any release caught
// between its intent and publish records.
func (s *Stream) reopen(ctx context.Context, cfg journal.Config) (*Stream, error) {
	w, n, err := journal.OpenAppendStream(ctx, s.path, cfg, s.replay)
	if err != nil {
		return nil, fmt.Errorf("stream %s: recovering: %w", s.id, err)
	}
	if n == 0 || s.d == nil {
		w.Close()
		return nil, fmt.Errorf("stream %s: journal holds no create record", s.id)
	}
	s.w = w
	s.initAssessor()
	if s.pending != nil {
		// Crash between intent and publish: the intent promised specific
		// bytes (its digest); the replayed window regenerates exactly them,
		// so completing here is deterministic. Failure fails the open — the
		// stream must not accept new work with an unfulfilled intent.
		if err := s.completePending(ctx); err != nil {
			s.w.Close()
			return nil, fmt.Errorf("stream %s: completing interrupted release %d: %w", s.id, s.pending.Release, err)
		}
	}
	if s.published != nil {
		// The publish record was fsync'd after the release file, so the
		// file must be intact; anything else is real corruption.
		if _, err := s.verifyReleaseFile(s.published); err != nil {
			s.w.Close()
			return nil, fmt.Errorf("stream %s: published release %d: %w", s.id, s.published.Seq, err)
		}
	}
	return s, nil
}

// replay applies one journaled record. The intent → publish window is the
// only place the protocol restricts record order: an intent must be the
// journal's last record or be followed immediately by its publish.
func (s *Stream) replay(rec journal.Record) error {
	if s.d == nil && rec.Type != recCreate {
		return fmt.Errorf("stream: record %d (%s) precedes the create record", rec.Seq, rec.Type)
	}
	if s.pending != nil && rec.Type != recPublish {
		return fmt.Errorf("stream: record %d (%s) follows an unpublished intent for release %d",
			rec.Seq, rec.Type, s.pending.Release)
	}
	switch rec.Type {
	case recCreate:
		if s.d != nil {
			return fmt.Errorf("stream: duplicate create record at seq %d", rec.Seq)
		}
		var p createPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding create record: %w", err)
		}
		return s.applyCreate(p)
	case recBatch:
		var p batchPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding batch record %d: %w", rec.Seq, err)
		}
		if s.batches[p.BatchID] {
			return fmt.Errorf("stream: batch %q journaled twice (records up to %d)", p.BatchID, rec.Seq)
		}
		bytes := batchBytes(p.Rows)
		//governcharge:ok — window memory is released in bulk by Close
		if err := s.gov.Reserve(govern.Memory, bytes); err != nil {
			return fmt.Errorf("stream: replaying batch %q: %w", p.BatchID, err)
		}
		s.memCharged += bytes
		s.applyBatch(p.BatchID, p.Rows)
		return nil
	case recWithdraw:
		var p withdrawPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding withdraw record %d: %w", rec.Seq, err)
		}
		return s.applyWithdraw(p.RowIDs)
	case recAnon:
		var p anonPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding anon record %d: %w", rec.Seq, err)
		}
		return s.applyAnon(p)
	case recIntent:
		var p intentPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding intent record %d: %w", rec.Seq, err)
		}
		if p.Release != s.relSeq+1 {
			return fmt.Errorf("stream: intent for release %d, want %d", p.Release, s.relSeq+1)
		}
		if p.Rows != len(s.d.Rows) {
			return fmt.Errorf("stream: intent for release %d covers %d rows, window has %d",
				p.Release, p.Rows, len(s.d.Rows))
		}
		s.relSeq = p.Release
		s.pending = &p
		return nil
	case recPublish:
		var p publishPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding publish record %d: %w", rec.Seq, err)
		}
		if s.pending == nil || s.pending.Release != p.Release {
			return fmt.Errorf("stream: publish record for release %d without matching intent", p.Release)
		}
		if p.Digest != s.pending.Digest {
			return fmt.Errorf("stream: publish digest %s contradicts intent digest %s for release %d",
				p.Digest, s.pending.Digest, p.Release)
		}
		s.published = &ReleaseInfo{
			Seq:          p.Release,
			File:         p.File,
			Path:         s.dir + "/" + p.File,
			Digest:       p.Digest,
			Rows:         s.pending.Rows,
			Suppressions: s.pendSupp,
		}
		s.pending, s.pendSupp = nil, 0
		s.releases++
		return nil
	case recAck:
		var p ackPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding ack record %d: %w", rec.Seq, err)
		}
		if s.published == nil || s.published.Seq != p.Release {
			return fmt.Errorf("stream: ack for release %d without a matching publish", p.Release)
		}
		s.published = nil
		s.acked++
		return nil
	case recCheckpoint:
		var p checkpointPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("stream: decoding checkpoint record %d: %w", rec.Seq, err)
		}
		if p.Batches != s.nbatch || p.Rows != len(s.d.Rows) || p.Releases != s.releases || p.Acked != s.acked {
			return fmt.Errorf("stream: checkpoint at seq %d (batches=%d rows=%d releases=%d acked=%d) contradicts replayed state (batches=%d rows=%d releases=%d acked=%d)",
				rec.Seq, p.Batches, p.Rows, p.Releases, p.Acked,
				s.nbatch, len(s.d.Rows), s.releases, s.acked)
		}
		return nil
	default:
		return fmt.Errorf("stream: unknown record type %q at seq %d", rec.Type, rec.Seq)
	}
}

// applyCreate adopts the journaled stream definition, cross-checking
// whatever the caller's Options carried — the journal is authoritative, a
// contradiction means the caller opened the wrong stream.
func (s *Stream) applyCreate(p createPayload) error {
	if p.Stream != s.id {
		return fmt.Errorf("stream: journal belongs to stream %q, opened as %q", p.Stream, s.id)
	}
	attrs, err := p.attrs()
	if err != nil {
		return err
	}
	sem, err := p.semantics()
	if err != nil {
		return err
	}
	if len(s.opts.Attrs) > 0 {
		if len(s.opts.Attrs) != len(attrs) {
			return fmt.Errorf("stream: caller schema has %d attributes, journal %d", len(s.opts.Attrs), len(attrs))
		}
		for i, a := range s.opts.Attrs {
			if a.Name != attrs[i].Name || a.Category != attrs[i].Category {
				return fmt.Errorf("stream: caller attribute %d (%s/%s) contradicts journal (%s/%s)",
					i, a.Name, a.Category, attrs[i].Name, attrs[i].Category)
			}
		}
	}
	if p.Threshold != s.opts.Threshold {
		return fmt.Errorf("stream: caller threshold %g contradicts journaled %g", s.opts.Threshold, p.Threshold)
	}
	if sem != s.opts.Semantics {
		return fmt.Errorf("stream: caller semantics %s contradicts journaled %s", s.opts.Semantics, sem)
	}
	s.opts.Attrs = attrs
	s.opts.Meta = p.Meta
	s.d = mdb.NewDataset(s.id, attrs)
	if len(s.d.QuasiIdentifiers()) == 0 {
		return fmt.Errorf("stream: journaled schema has no quasi-identifiers")
	}
	return nil
}

// applyAnon replays one suppression iteration. New values go through
// ParseValue against the window's allocator, which observes the journaled
// null ids — so nulls minted after recovery never collide with replayed
// ones, exactly as on the live path.
func (s *Stream) applyAnon(p anonPayload) error {
	for _, rec := range p.Decisions {
		pos, ok := s.rowPos[rec.RowID]
		if !ok {
			return fmt.Errorf("stream: journaled suppression of unknown row %d", rec.RowID)
		}
		attr := s.d.AttrIndex(rec.Attr)
		if attr < 0 {
			return fmt.Errorf("stream: journaled suppression of unknown attribute %q", rec.Attr)
		}
		r := s.d.Rows[pos]
		if got := r.Values[attr].String(); got != rec.Old {
			// Digests, not raw cells: enough to show the mismatch without
			// copying microdata into an error that reaches logs.
			return fmt.Errorf("stream: row %d %s holds %s, journal expected %s",
				rec.RowID, rec.Attr, r.Values[attr].Redacted(), mdb.RedactString(rec.Old))
		}
		r.Values[attr] = mdb.ParseValue(rec.New, &s.d.Nulls)
		s.pendSupp++
	}
	return nil
}

// batchBytes is the governor charge for one batch — the live path and
// replay must agree so a recovered stream holds the same reservation.
func batchBytes(rows [][]string) int64 {
	var bytes int64
	for _, r := range rows {
		bytes += 64
		for _, c := range r {
			bytes += int64(len(c))
		}
	}
	return bytes
}
