package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"vadasa/internal/faultfs"
	"vadasa/internal/govern"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

func testAttrs() []mdb.Attribute {
	return []mdb.Attribute{
		{Name: "Id", Category: mdb.Identifier},
		{Name: "Sector", Category: mdb.QuasiIdentifier},
		{Name: "Region", Category: mdb.QuasiIdentifier},
		{Name: "Size", Category: mdb.QuasiIdentifier},
		{Name: "Weight", Category: mdb.Weight},
	}
}

// testRows builds n deterministic rows whose quasi-identifiers pair up by
// absolute index: an even-sized window starting at an even offset satisfies
// k=2 with no suppressions (deterministic fsync counts for fault
// injection), while withdrawals and odd batches create singletons that
// exercise the gate.
func testRows(start, n int) [][]string {
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		k := (start + i) / 2
		out = append(out, []string{
			fmt.Sprintf("c%d", start+i),
			fmt.Sprintf("sector%d", k%3),
			fmt.Sprintf("region%d", k%2),
			fmt.Sprintf("size%d", k%4),
			fmt.Sprintf("%d", 10+(start+i)%5),
		})
	}
	return out
}

func testOptions() Options {
	return Options{
		Assessor:  risk.KAnonymity{K: 2},
		Threshold: 0.5,
		Semantics: mdb.MaybeMatch,
		Attrs:     testAttrs(),
	}
}

func openTest(t *testing.T, dir string, opts Options) *Stream {
	t.Helper()
	s, err := Open(context.Background(), "tst", filepath.Join(dir, "tst.wal"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendReleaseAckCycle(t *testing.T) {
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close(ctx)

	res, err := s.Append(ctx, "b1", testRows(0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RowIDs) != 6 || res.Rows != 6 || res.Duplicate {
		t.Fatalf("append result %+v", res)
	}
	// Idempotent retry: same batch ID is acknowledged, not re-applied.
	res2, err := s.Append(ctx, "b1", testRows(0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Duplicate || res2.Rows != 6 {
		t.Fatalf("duplicate append result %+v", res2)
	}

	st := s.Status(ctx)
	if st.Rows != 6 || st.Batches != 1 || st.Mode != "incremental" || !st.RiskCurrent {
		t.Fatalf("status %+v", st)
	}

	info, err := s.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Rows != 6 {
		t.Fatalf("release info %+v", info)
	}
	b, err := s.ReleaseBytes(info)
	if err != nil {
		t.Fatal(err)
	}
	if digestBytes(b) != info.Digest {
		t.Fatal("served bytes contradict the journaled digest")
	}
	// Re-serving before the ack returns the same release unchanged.
	again, err := s.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again.Seq != 1 || again.Digest != info.Digest {
		t.Fatalf("re-served release %+v, want the published seq 1", again)
	}

	if err := s.Ack(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Ack(ctx, 1); err != nil {
		t.Fatalf("re-acking a retired release must be idempotent, got %v", err)
	}

	if _, err := s.Append(ctx, "b2", testRows(6, 4)); err != nil {
		t.Fatal(err)
	}
	info2, err := s.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Seq != 2 || info2.Rows != 10 {
		t.Fatalf("second release %+v", info2)
	}
	st = s.Status(ctx)
	if st.Releases != 2 || st.Acked != 1 {
		t.Fatalf("status after two releases: %+v", st)
	}
}

func TestAppendValidation(t *testing.T) {
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close(ctx)

	cases := []struct {
		name string
		id   string
		rows [][]string
	}{
		{"empty batch id", "", testRows(0, 1)},
		{"empty batch", "b", nil},
		{"arity", "b", [][]string{{"c1", "s", "r"}}},
		{"null token", "b", [][]string{{"c1", "⊥3", "r", "z", "10"}}},
		{"anonymous null", "b", [][]string{{"c1", "*", "r", "z", "10"}}},
		{"bad weight", "b", [][]string{{"c1", "s", "r", "z", "heavy"}}},
	}
	for _, c := range cases {
		if _, err := s.Append(ctx, c.id, c.rows); err == nil {
			t.Errorf("%s: append accepted", c.name)
		}
	}
	if st := s.Status(ctx); st.Rows != 0 || st.Batches != 0 {
		t.Fatalf("rejected appends mutated the window: %+v", st)
	}
}

func TestWindowFull(t *testing.T) {
	ctx := context.Background()
	opts := testOptions()
	opts.MaxRows = 5
	s := openTest(t, t.TempDir(), opts)
	defer s.Close(ctx)

	if _, err := s.Append(ctx, "b1", testRows(0, 4)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Append(ctx, "b2", testRows(4, 2))
	var full *WindowFullError
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want WindowFullError", err)
	}
	if full.Rows != 4 || full.Adding != 2 || full.Max != 5 {
		t.Fatalf("window-full detail %+v", full)
	}
	if _, err := s.Append(ctx, "b2", testRows(4, 1)); err != nil {
		t.Fatalf("append within the bound: %v", err)
	}
}

func TestWithdraw(t *testing.T) {
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close(ctx)

	res, err := s.Append(ctx, "b1", testRows(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Withdraw(ctx, []int{res.RowIDs[2], res.RowIDs[5]}); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(ctx); st.Rows != 6 || st.Withdrawn != 2 {
		t.Fatalf("status after withdraw: %+v", st)
	}
	if err := s.Withdraw(ctx, []int{res.RowIDs[2]}); err == nil {
		t.Fatal("withdrawing a withdrawn row succeeded")
	}
	// The online risk vector after the deletes must equal a scratch
	// assessment of the remaining window.
	s.mu.Lock()
	if err := s.ensureRisks(ctx); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	got := append([]float64(nil), s.risks...)
	want, err := risk.AssessContext(ctx, s.opts.Assessor, s.d, s.opts.Semantics)
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("risk vector length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("risk[%d] = %v, scratch %v", i, got[i], want[i])
		}
	}
}

// driveOps runs a fixed op sequence against a stream factory, reopening
// between ops when hop is true, and returns the bytes of every release.
func driveOps(t *testing.T, dir string, opts Options, hop bool) [][]byte {
	t.Helper()
	ctx := context.Background()
	path := filepath.Join(dir, "tst.wal")
	s, err := Open(ctx, "tst", path, opts)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func() {
		if !hop {
			return
		}
		if err := s.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if s, err = Open(ctx, "tst", path, opts); err != nil {
			t.Fatal(err)
		}
	}
	var releases [][]byte
	release := func() {
		info, err := s.Release(ctx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.ReleaseBytes(info)
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, b)
		if err := s.Ack(ctx, info.Seq); err != nil {
			t.Fatal(err)
		}
	}

	var ids []int
	appendBatch := func(name string, start, n int) {
		res, err := s.Append(ctx, name, testRows(start, n))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.RowIDs...)
	}

	appendBatch("b1", 0, 6)
	reopen()
	appendBatch("b2", 6, 4)
	reopen()
	if err := s.Withdraw(ctx, []int{ids[3], ids[8]}); err != nil {
		t.Fatal(err)
	}
	reopen()
	release()
	reopen()
	appendBatch("b3", 10, 4)
	reopen()
	release()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return releases
}

// Recovery by replay must be bit-identical to an uninterrupted run: the
// same op sequence, with a close+reopen between every op, produces byte-for-
// byte the same releases.
func TestRecoveryMatchesUninterrupted(t *testing.T) {
	control := driveOps(t, t.TempDir(), testOptions(), false)
	hopped := driveOps(t, t.TempDir(), testOptions(), true)
	if len(control) != len(hopped) {
		t.Fatalf("control produced %d releases, hopped %d", len(control), len(hopped))
	}
	for i := range control {
		if !bytes.Equal(control[i], hopped[i]) {
			t.Fatalf("release %d differs between uninterrupted and replayed runs", i+1)
		}
	}
}

// fullOnly hides the incremental interface of an assessor, forcing the
// degraded periodic-reassessment path.
type fullOnly struct{ inner risk.Assessor }

func (f fullOnly) Name() string { return f.inner.Name() }
func (f fullOnly) Assess(d *mdb.Dataset, sem mdb.Semantics) ([]float64, error) {
	return f.inner.Assess(d, sem)
}

// The degraded full-reassessment path must release the same bytes as the
// incremental path: mode is a performance choice, never a semantics one.
func TestDegradedModeBitIdentical(t *testing.T) {
	inc := driveOps(t, t.TempDir(), testOptions(), false)
	opts := testOptions()
	opts.Assessor = fullOnly{inner: risk.KAnonymity{K: 2}}
	opts.FullEvery = 2
	full := driveOps(t, t.TempDir(), opts, false)
	if len(inc) != len(full) {
		t.Fatalf("incremental produced %d releases, degraded %d", len(inc), len(full))
	}
	for i := range inc {
		if !bytes.Equal(inc[i], full[i]) {
			t.Fatalf("release %d differs between incremental and degraded modes", i+1)
		}
	}
	// And the degraded mode must also recover bit-identically.
	hopped := driveOps(t, t.TempDir(), opts, true)
	for i := range full {
		if !bytes.Equal(full[i], hopped[i]) {
			t.Fatalf("degraded release %d differs after replay", i+1)
		}
	}
}

// Under standard-null semantics suppression cannot merge groups, so a
// window of unique tuples can never clear the gate: Release must refuse
// with a GateClosedError and publish nothing.
func TestGateClosed(t *testing.T) {
	ctx := context.Background()
	opts := testOptions()
	opts.Semantics = mdb.StandardNulls
	s := openTest(t, t.TempDir(), opts)
	defer s.Close(ctx)

	rows := [][]string{
		{"c1", "alpha", "north", "s1", "10"},
		{"c2", "beta", "south", "s2", "11"},
	}
	if _, err := s.Append(ctx, "b1", rows); err != nil {
		t.Fatal(err)
	}
	_, err := s.Release(ctx)
	var gate *GateClosedError
	if !errors.As(err, &gate) {
		t.Fatalf("err = %v, want GateClosedError", err)
	}
	if gate.Residual != 2 {
		t.Fatalf("residual = %d, want 2", gate.Residual)
	}
	if st := s.Status(ctx); st.Releases != 0 || st.Published != nil {
		t.Fatalf("refused gate published something: %+v", st)
	}
}

// A saturated governor refuses admission with a typed budget error and the
// refused batch leaves no trace — neither in memory nor in the journal.
func TestGovernorAdmission(t *testing.T) {
	ctx := context.Background()
	gov := govern.New("tiny", govern.Limits{MaxBytes: 1})
	opts := testOptions()
	opts.Governor = gov
	dir := t.TempDir()
	s := openTest(t, dir, opts)
	defer s.Close(ctx)

	_, err := s.Append(ctx, "b1", testRows(0, 4))
	var ebe *govern.ErrBudgetExceeded
	if !errors.As(err, &ebe) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if st := s.Status(ctx); st.Rows != 0 || st.Batches != 0 {
		t.Fatalf("refused batch mutated the window: %+v", st)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Reopen without the budget: the journal must hold no trace of the
	// refused batch.
	opts.Governor = nil
	s2 := openTest(t, dir, opts)
	defer s2.Close(ctx)
	if st := s2.Status(ctx); st.Rows != 0 || st.Batches != 0 {
		t.Fatalf("journal recorded a refused batch: %+v", st)
	}
}

// A budget big enough for the window but too small for the group index
// degrades the stream to periodic full reassessment instead of failing
// ingestion, and the release still goes out.
func TestBudgetRefusalDegrades(t *testing.T) {
	ctx := context.Background()
	rows := testRows(0, 8)

	// Measure the index footprint the stream would want.
	probe := mdb.NewDataset("probe", testAttrs())
	var alloc mdb.NullAllocator
	for _, r := range rows {
		vals := make([]mdb.Value, len(r))
		for j, c := range r {
			vals[j] = mdb.ParseValue(c, &alloc)
		}
		probe.Append(&mdb.Row{Values: vals})
	}
	ia := risk.KAnonymity{K: 2}
	attrs, err := ia.IndexAttrs(probe)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := mdb.BuildGroupIndex(ctx, probe, attrs, mdb.MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	limit := batchBytes(rows) + idx.EstimatedBytes()/2

	opts := testOptions()
	opts.Governor = govern.New("mid", govern.Limits{MaxBytes: limit})
	s := openTest(t, t.TempDir(), opts)
	defer s.Close(ctx)

	if _, err := s.Append(ctx, "b1", rows); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(ctx); st.Mode != "full" {
		t.Fatalf("mode = %q, want full (degraded)", st.Mode)
	}
	info, err := s.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 {
		t.Fatalf("release %+v", info)
	}
	// The degraded release must equal the un-governed control's bytes.
	ctl := openTest(t, t.TempDir(), testOptions())
	defer ctl.Close(ctx)
	if _, err := ctl.Append(ctx, "b1", rows); err != nil {
		t.Fatal(err)
	}
	ctlInfo, err := ctl.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctlInfo.Digest != info.Digest {
		t.Fatal("degraded release differs from the incremental control")
	}
}

func TestPeek(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := testOptions()
	opts.Meta = []byte(`{"measure":"k-anonymity","k":2}`)
	s := openTest(t, dir, opts)
	if _, err := s.Append(ctx, "b1", testRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := Peek(ctx, nil, filepath.Join(dir, "tst.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "tst" || info.Threshold != 0.5 || info.Semantics != mdb.MaybeMatch {
		t.Fatalf("peek info %+v", info)
	}
	if len(info.Attrs) != 5 || info.Attrs[1].Category != mdb.QuasiIdentifier {
		t.Fatalf("peek attrs %+v", info.Attrs)
	}
	if string(info.Meta) != string(opts.Meta) {
		t.Fatalf("peek meta %s", info.Meta)
	}
}

// While a journaled intent awaits its publish record every mutation is
// rejected: the window must stay exactly the promised snapshot.
func TestPendingBlocksMutations(t *testing.T) {
	ctx := context.Background()
	faulty := faultfs.NewFaulty(faultfs.OS)
	opts := testOptions()
	opts.FS = faulty
	s := openTest(t, t.TempDir(), opts)
	defer s.Close(ctx)

	res, err := s.Append(ctx, "b1", testRows(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	// The gate needs no suppressions (rows pair up), so Release fsyncs
	// intent (1), the release file (2), publish (3). Fail the third.
	faulty.FailSync(3)
	if _, err := s.Release(ctx); err == nil {
		t.Fatal("release succeeded despite failed publish fsync")
	}
	var pend *PendingReleaseError
	if _, err := s.Append(ctx, "b2", testRows(4, 2)); !errors.As(err, &pend) {
		t.Fatalf("append during pending intent: %v", err)
	}
	if err := s.Withdraw(ctx, []int{res.RowIDs[0]}); !errors.As(err, &pend) {
		t.Fatalf("withdraw during pending intent: %v", err)
	}
	if err := s.Ack(ctx, 1); !errors.As(err, &pend) {
		t.Fatalf("ack during pending intent: %v", err)
	}
	// Retrying the release completes the journaled intent.
	info, err := s.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 {
		t.Fatalf("completed release %+v", info)
	}
	if _, err := s.Append(ctx, "b2", testRows(4, 2)); err != nil {
		t.Fatalf("append after completed release: %v", err)
	}
}

func TestOpenRejectsContradictoryOptions(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	bad := testOptions()
	bad.Threshold = 0.9
	if _, err := Open(ctx, "tst", filepath.Join(dir, "tst.wal"), bad); err == nil {
		t.Fatal("reopen with a different threshold succeeded")
	}
	bad = testOptions()
	bad.Attrs[2].Name = "Elsewhere"
	if _, err := Open(ctx, "tst", filepath.Join(dir, "tst.wal"), bad); err == nil {
		t.Fatal("reopen with a different schema succeeded")
	}
	if _, err := Open(ctx, "other", filepath.Join(dir, "tst.wal"), testOptions()); err == nil {
		t.Fatal("reopen under a different stream id succeeded")
	}
}

func TestClosedStreamRejectsEverything(t *testing.T) {
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testOptions())
	if _, err := s.Append(ctx, "b1", testRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Append(ctx, "b2", testRows(2, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed stream: %v", err)
	}
	if _, err := s.Release(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("release on closed stream: %v", err)
	}
	if err := s.Ack(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("ack on closed stream: %v", err)
	}
}
