package stream

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestStreamSoak is the long randomized crash/fault soak behind `make
// soak`: the TestChaosRandomized schedule, many more seeds and rounds,
// time-bounded. It only runs when VADASA_SOAK is set (the target exports
// it), so the tier-1 suite stays fast; VADASA_SOAK_SECONDS overrides the
// default 60-second budget.
func TestStreamSoak(t *testing.T) {
	if os.Getenv("VADASA_SOAK") == "" {
		t.Skip("set VADASA_SOAK=1 (or run `make soak`) to run the stream soak")
	}
	budget := 60 * time.Second
	if v := os.Getenv("VADASA_SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad VADASA_SOAK_SECONDS %q: %v", v, err)
		}
		budget = time.Duration(secs) * time.Second
	}
	deadline := time.Now().Add(budget)
	seed := int64(time.Now().UnixNano()) // soak explores; chaos tests pin seeds
	runs := 0
	for time.Now().Before(deadline) {
		seed++
		runs++
		t.Run(fmt.Sprintf("run%d_seed%d", runs, seed), func(t *testing.T) {
			chaosRun(t, seed, 200)
		})
	}
	t.Logf("soak: %d randomized runs in %v (last seed %d)", runs, budget, seed)
}
