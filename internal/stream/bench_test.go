package stream

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
)

// BenchmarkStreamAppendRescore measures the streaming ingest path end to
// end: journaled (fsync'd) batch append plus the online incremental rescore
// of the growing window. The window accumulates across iterations, so the
// figure reflects maintenance cost against a realistic standing window, not
// an empty one.
func BenchmarkStreamAppendRescore(b *testing.B) {
	const batchRows = 64
	d := synth.Generate(synth.Config{Tuples: 2500, QIs: 4, Dist: synth.DistW, Seed: 11})
	batches := make([][][]string, 0, (len(d.Rows)+batchRows-1)/batchRows)
	for lo := 0; lo < len(d.Rows); lo += batchRows {
		hi := lo + batchRows
		if hi > len(d.Rows) {
			hi = len(d.Rows)
		}
		rows := make([][]string, 0, hi-lo)
		for _, r := range d.Rows[lo:hi] {
			cells := make([]string, len(r.Values))
			for j, v := range r.Values {
				cells[j] = v.String()
			}
			rows = append(rows, cells)
		}
		batches = append(batches, rows)
	}

	ctx := context.Background()
	s, err := Open(ctx, "bench", filepath.Join(b.TempDir(), "bench.wal"), Options{
		Assessor:  risk.KAnonymity{K: 2},
		Threshold: 0.5,
		Semantics: mdb.MaybeMatch,
		Attrs:     d.Attrs,
		MaxRows:   1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close(ctx)

	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		batch := batches[i%len(batches)]
		if _, err := s.Append(ctx, fmt.Sprintf("b%d", i), batch); err != nil {
			b.Fatal(err)
		}
		rows += len(batch)
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
	st := s.Status(ctx)
	if !st.RiskCurrent {
		b.Fatal("risk vector not maintained online during the benchmark")
	}
	b.ReportMetric(float64(st.OverThreshold), "overT-final")
}
