// Package stream implements crash-consistent streaming anonymization: a
// long-running ingestion window over the anonymization cycle's primitives,
// with the journal as the single source of truth.
//
// Every state transition is journaled before it is acknowledged (write-ahead
// ack): an accepted batch, a withdrawal, every suppression the release gate
// applies, and the release protocol itself. Risk is maintained online
// through mdb.GroupIndex row operations when the measure implements
// risk.IncrementalAssessor, bit-identical to a full recompute over the
// current row set; otherwise (SUDA, cluster) the stream degrades to
// periodic full reassessment.
//
// A release is gated: it is produced only when every tuple in the window
// clears the threshold T, and published under an intent → publish → ack
// protocol. The intent record carries the digest of the exact bytes to be
// published; the publish record commits the publication; the ack record
// retires it. Recovery replays the journal to a state bit-identical to an
// uninterrupted run — a release interrupted between intent and publish is
// completed deterministically (the replayed window regenerates the same
// bytes, checked against the intent digest), an acked release is never
// re-published, and an acked batch is never lost.
package stream

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"vadasa/internal/anon"
	"vadasa/internal/faultfs"
	"vadasa/internal/govern"
	"vadasa/internal/journal"
	"vadasa/internal/mdb"
	"vadasa/internal/risk"
)

// Journal record types of a stream WAL (see DESIGN.md §13 for the
// protocol).
const (
	// recCreate is the first record: schema, threshold, semantics and the
	// caller's opaque metadata (the server journals the measure parameters
	// there so recovery can rebuild the assessor).
	recCreate journal.Type = "create"
	// recBatch commits one accepted ingestion batch — appended and fsync'd
	// before the append is acknowledged to the client.
	recBatch journal.Type = "batch"
	// recWithdraw removes rows (by ID) from the window.
	recWithdraw journal.Type = "withdraw"
	// recAnon commits one release-gate suppression iteration.
	recAnon journal.Type = "anon"
	// recIntent declares a release: sequence number, window size and the
	// SHA-256 of the exact bytes to be published.
	recIntent journal.Type = "intent"
	// recPublish commits the publication: the release file is durable.
	recPublish journal.Type = "publish"
	// recAck retires a published release; the next release opens a new
	// window snapshot.
	recAck journal.Type = "ack"
	// recCheckpoint marks a clean drain (SIGTERM) with counter snapshots.
	recCheckpoint journal.Type = "checkpoint"
)

// Options parameterizes a stream. Zero values select production defaults.
type Options struct {
	// Assessor scores tuples; when it implements risk.IncrementalAssessor
	// the stream maintains risk online, otherwise it reassesses in full
	// every FullEvery batches. Required.
	Assessor risk.Assessor
	// Threshold is T: the release gate opens only when every tuple's risk
	// is <= T. Required (> 0).
	Threshold float64
	// Semantics is the labelled-null semantics of the window.
	Semantics mdb.Semantics
	// Attrs is the window schema. Required when creating; on reopen it is
	// checked against the journaled schema if non-nil, adopted from the
	// journal if nil.
	Attrs []mdb.Attribute
	// Meta is opaque caller metadata journaled in the create record and
	// surfaced by Peek — the server stores measure parameters here.
	Meta json.RawMessage
	// MaxRows bounds the in-memory window (0 = 100000). An append that
	// would exceed it fails with a WindowFullError.
	MaxRows int
	// FullEvery is the degraded-mode reassessment cadence in batches
	// (0 = 8).
	FullEvery int
	// MaxIterations caps the release gate's suppression loop (0 = 10000).
	MaxIterations int
	// Order routes risky tuples in the release gate (the cycle's default:
	// less significant first).
	Order anon.TupleOrder
	// Choice picks the attribute a suppression nulls.
	Choice anon.AttrChoice
	// Governor, when non-nil, is charged for the window and the group
	// index; a refused index budget degrades the stream to periodic full
	// reassessment instead of failing ingestion.
	Governor *govern.Governor
	// FS is the filesystem (nil = the real one); tests inject
	// faultfs.Faulty.
	FS faultfs.FS
	// DiskHeadroom is the journal's pre-append free-space floor.
	DiskHeadroom int64
	// FenceCheck, when non-nil, guards every client-visible mutation and
	// the publish commit point: it is consulted before Append, Withdraw,
	// Release and Ack touch the journal, and again inside completePending
	// before the publish record is committed. The replication layer
	// installs the node's epoch fence here, so a demoted primary's writes
	// fail with its typed fencing error instead of double-publishing a
	// release the promoted standby already owns.
	FenceCheck func() error
	// OnAppend is threaded into the journal writer's configuration: it
	// observes every committed record (sequence number plus the exact
	// framed line, newline stripped) after the local fsync but before the
	// commit point advances. The replication layer installs its shipper
	// here; in synchronous mode the hook's error fails the append and the
	// stream's normal Repair path truncates the unreplicated record.
	OnAppend func(seq int, line []byte) error
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o Options) maxRows() int {
	if o.MaxRows > 0 {
		return o.MaxRows
	}
	return 100_000
}

func (o Options) fullEvery() int {
	if o.FullEvery > 0 {
		return o.FullEvery
	}
	return 8
}

func (o Options) maxIterations() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 10_000
}

// ReleaseInfo describes one published release.
type ReleaseInfo struct {
	// Seq is the release sequence number (1-based).
	Seq int `json:"seq"`
	// File is the release file's name within the stream directory.
	File string `json:"file"`
	// Path is the full on-disk path.
	Path string `json:"path"`
	// Digest is the SHA-256 of the file's bytes, hex-encoded.
	Digest string `json:"digest"`
	// Rows is the window size the release snapshot covers.
	Rows int `json:"rows"`
	// Suppressions counts the suppression decisions journaled for this
	// release's gate.
	Suppressions int `json:"suppressions"`
}

// Status is a point-in-time snapshot of a stream.
type Status struct {
	Rows      int    `json:"rows"`
	Batches   int    `json:"batches"`
	Withdrawn int    `json:"withdrawnRows"`
	Releases  int    `json:"releases"`
	Acked     int    `json:"acked"`
	Mode      string `json:"mode"` // "incremental" or "full"
	// RiskCurrent reports whether OverThreshold reflects the present
	// window (the degraded path only reassesses periodically).
	RiskCurrent   bool         `json:"riskCurrent"`
	OverThreshold int          `json:"overThreshold"`
	PendingIntent int          `json:"pendingIntent,omitempty"`
	Published     *ReleaseInfo `json:"published,omitempty"`
	Closed        bool         `json:"closed"`
}

// AppendResult acknowledges an accepted (journaled) batch.
type AppendResult struct {
	// RowIDs are the window-stable IDs assigned to the batch's rows, in
	// input order (withdrawals and decisions reference these).
	RowIDs []int `json:"rowIds"`
	// Rows is the window size after the append.
	Rows int `json:"rows"`
	// Duplicate reports an idempotent replay: the batch ID was already
	// journaled, nothing was re-applied.
	Duplicate bool `json:"duplicate,omitempty"`
}

// GateClosedError: the release gate refused to publish because tuples
// remain over threshold after the suppression loop ran out of moves.
type GateClosedError struct {
	Residual int
}

func (e *GateClosedError) Error() string {
	return fmt.Sprintf("stream: release gate closed: %d tuples remain over threshold with no anonymization step left", e.Residual)
}

// WindowFullError: the append would exceed the bounded in-memory window.
type WindowFullError struct {
	Rows, Adding, Max int
}

func (e *WindowFullError) Error() string {
	return fmt.Sprintf("stream: window holds %d rows; adding %d exceeds the %d-row bound", e.Rows, e.Adding, e.Max)
}

// PendingReleaseError: mutations are rejected while a journaled intent
// awaits its publish record — the window must stay exactly the intent's
// snapshot until the publication completes.
type PendingReleaseError struct {
	Release int
}

func (e *PendingReleaseError) Error() string {
	return fmt.Sprintf("stream: release %d has a journaled intent awaiting publication; retry the release first", e.Release)
}

// ErrClosed rejects operations on a drained stream.
var ErrClosed = fmt.Errorf("stream: closed")

// Stream is one crash-consistent ingestion window. All methods are safe for
// concurrent use; the journal serializes state transitions.
type Stream struct {
	mu   sync.Mutex
	id   string
	path string
	dir  string
	opts Options
	fs   faultfs.FS
	gov  *govern.Governor
	w    *journal.Writer

	d       *mdb.Dataset
	nextID  int
	rowPos  map[int]int // row ID → current position
	batches map[string]bool
	nbatch  int
	ndrop   int

	// Online risk state. inc == nil means the assessor has no incremental
	// path; degraded means it has one but a budget refusal forced the full
	// path (retried at the next release).
	inc       risk.IncrementalAssessor
	incAttrs  []int
	idx       *mdb.GroupIndex
	risks     []float64
	current   bool
	degraded  bool
	sinceFull int

	// Release protocol state.
	relSeq    int
	relBytes  []byte // pending release bytes, regenerated on recovery
	pending   *intentPayload
	pendSupp  int
	published *ReleaseInfo
	releases  int
	acked     int
	closed    bool

	memCharged int64
	idxCharged int64
}

// Open opens the stream journaled at path, creating it if the journal does
// not exist yet, or replaying it to the pre-crash state if it does. id
// names the stream (it must match the journaled name on reopen); a release
// interrupted between its intent and publish records is completed before
// Open returns.
func Open(ctx context.Context, id, path string, opts Options) (*Stream, error) {
	if opts.Assessor == nil {
		return nil, fmt.Errorf("stream: Options.Assessor is required")
	}
	if opts.Threshold <= 0 {
		return nil, fmt.Errorf("stream: Options.Threshold must be positive, got %g", opts.Threshold)
	}
	s := &Stream{
		id:      id,
		path:    path,
		dir:     filepath.Dir(path),
		opts:    opts,
		fs:      opts.FS,
		gov:     opts.Governor,
		rowPos:  make(map[int]int),
		batches: make(map[string]bool),
	}
	if s.fs == nil {
		s.fs = faultfs.OS
	}
	cfg := journal.Config{FS: s.fs, DiskHeadroom: opts.DiskHeadroom, OnAppend: opts.OnAppend}

	if probe, err := s.fs.Open(path); err == nil {
		probe.Close()
		return s.reopen(ctx, cfg)
	}
	// Fresh stream: the create record is the schema's durability point.
	if len(opts.Attrs) == 0 {
		return nil, fmt.Errorf("stream: Options.Attrs is required to create a stream")
	}
	s.d = mdb.NewDataset(id, opts.Attrs)
	if len(s.d.QuasiIdentifiers()) == 0 {
		return nil, fmt.Errorf("stream: schema has no quasi-identifiers to anonymize")
	}
	w, err := journal.CreateWith(path, cfg)
	if err != nil {
		return nil, err
	}
	s.w = w
	if err := w.Append(recCreate, makeCreatePayload(id, opts)); err != nil {
		w.Close()
		s.fs.Remove(path)
		return nil, err
	}
	s.initAssessor()
	return s, nil
}

// initAssessor resolves whether the measure supports the incremental path.
func (s *Stream) initAssessor() {
	if ia, ok := s.opts.Assessor.(risk.IncrementalAssessor); ok {
		if attrs, err := ia.IndexAttrs(s.d); err == nil {
			s.inc, s.incAttrs = ia, attrs
		}
	}
}

func (s *Stream) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// checkFence consults the installed epoch fence (nil means unfenced). It
// runs under s.mu, before the journal sees the mutation, so a demoted
// primary refuses writes without leaving anything to repair.
func (s *Stream) checkFence() error {
	if s.opts.FenceCheck == nil {
		return nil
	}
	return s.opts.FenceCheck()
}

// JournalSeq returns the sequence number of the last committed journal
// record — the tail position a replication shipper registers for this log.
func (s *Stream) JournalSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Seq()
}

// Append journals and admits one ingestion batch. Every cell must be a
// constant (labelled-null tokens are rejected — nulls enter the window only
// through gated suppressions); the weight column, when the schema has one,
// must parse as a float. The batch is fsync'd to the journal before any
// in-memory state changes, so a crash after Append returns can never lose
// it. batchID de-duplicates retries: a batch ID already journaled is
// acknowledged again without being re-applied.
func (s *Stream) Append(ctx context.Context, batchID string, rows [][]string) (*AppendResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.checkFence(); err != nil {
		return nil, err
	}
	if s.pending != nil {
		return nil, &PendingReleaseError{Release: s.pending.Release}
	}
	if batchID == "" {
		return nil, fmt.Errorf("stream: batch ID is required (idempotency key)")
	}
	if s.batches[batchID] {
		return &AppendResult{Rows: len(s.d.Rows), Duplicate: true}, nil
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("stream: empty batch")
	}
	if len(s.d.Rows)+len(rows) > s.opts.maxRows() {
		return nil, &WindowFullError{Rows: len(s.d.Rows), Adding: len(rows), Max: s.opts.maxRows()}
	}
	if err := s.validateBatch(rows); err != nil {
		return nil, err
	}
	bytes := batchBytes(rows)
	//governcharge:ok — window memory is released in bulk by Close
	if err := s.gov.Reserve(govern.Memory, bytes); err != nil {
		return nil, fmt.Errorf("stream: admitting batch: %w", err)
	}
	// Write-ahead ack: the journal append is the commit point.
	if err := s.w.Append(recBatch, batchPayload{BatchID: batchID, Rows: rows}); err != nil {
		s.gov.Release(govern.Memory, bytes)
		if rerr := s.w.Repair(); rerr != nil {
			s.logf("stream %s: repairing journal after failed batch append: %v", s.id, rerr)
		}
		return nil, err
	}
	s.memCharged += bytes
	ids := s.applyBatch(batchID, rows)
	s.maintainRisk(ctx)
	return &AppendResult{RowIDs: ids, Rows: len(s.d.Rows)}, nil
}

// validateBatch rejects rows the journaled replay could not reproduce
// exactly: wrong arity, labelled-null tokens, unparsable weights.
func (s *Stream) validateBatch(rows [][]string) error {
	w := s.d.WeightIndex()
	var scratch mdb.NullAllocator
	for i, r := range rows {
		if len(r) != len(s.d.Attrs) {
			return fmt.Errorf("stream: batch row %d has %d fields, schema has %d", i, len(r), len(s.d.Attrs))
		}
		for j, cell := range r {
			if mdb.ParseValue(cell, &scratch).IsNull() {
				// The offending cell is client-supplied microdata; digest it
				// rather than echo it into an error that reaches server logs.
				return fmt.Errorf("stream: batch row %d: %s is a labelled-null token (%s); appended rows must be constants", i, s.d.Attrs[j].Name, mdb.RedactString(cell))
			}
		}
		if w >= 0 {
			if _, err := strconv.ParseFloat(r[w], 64); err != nil {
				// Unwrapped: strconv.NumError embeds the raw input string.
				return fmt.Errorf("stream: batch row %d: bad weight %s: %v", i, mdb.RedactString(r[w]), errors.Unwrap(err))
			}
		}
	}
	return nil
}

// applyBatch replays a journaled batch into the window — the single code
// path shared by live appends and recovery, which is what makes a recovered
// window bit-identical to the uninterrupted one.
func (s *Stream) applyBatch(batchID string, rows [][]string) []int {
	w := s.d.WeightIndex()
	ids := make([]int, 0, len(rows))
	for _, r := range rows {
		vals := make([]mdb.Value, len(r))
		for j, cell := range r {
			vals[j] = mdb.ParseValue(cell, &s.d.Nulls)
		}
		row := &mdb.Row{Values: vals}
		if w >= 0 {
			row.Weight, _ = strconv.ParseFloat(r[w], 64)
		}
		s.nextID++
		row.ID = s.nextID
		s.rowPos[row.ID] = len(s.d.Rows)
		s.d.Append(row)
		ids = append(ids, row.ID)
	}
	s.batches[batchID] = true
	s.nbatch++
	return ids
}

// Withdraw journals and applies the removal of rows (by window-stable ID).
// Like Append, the journal record is fsync'd before any state changes.
func (s *Stream) Withdraw(ctx context.Context, rowIDs []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.checkFence(); err != nil {
		return err
	}
	if s.pending != nil {
		return &PendingReleaseError{Release: s.pending.Release}
	}
	if len(rowIDs) == 0 {
		return fmt.Errorf("stream: no rows to withdraw")
	}
	seen := make(map[int]bool, len(rowIDs))
	for _, id := range rowIDs {
		if _, ok := s.rowPos[id]; !ok {
			return fmt.Errorf("stream: row %d is not in the window", id)
		}
		if seen[id] {
			return fmt.Errorf("stream: row %d withdrawn twice in one call", id)
		}
		seen[id] = true
	}
	if err := s.w.Append(recWithdraw, withdrawPayload{RowIDs: rowIDs}); err != nil {
		if rerr := s.w.Repair(); rerr != nil {
			s.logf("stream %s: repairing journal after failed withdraw append: %v", s.id, rerr)
		}
		return err
	}
	if err := s.applyWithdraw(rowIDs); err != nil {
		return err
	}
	s.maintainRisk(ctx)
	return nil
}

// applyWithdraw removes the rows — shared by the live path and recovery.
func (s *Stream) applyWithdraw(rowIDs []int) error {
	for _, id := range rowIDs {
		pos, ok := s.rowPos[id]
		if !ok {
			return fmt.Errorf("stream: journaled withdrawal of unknown row %d", id)
		}
		s.d.Rows = append(s.d.Rows[:pos], s.d.Rows[pos+1:]...)
		delete(s.rowPos, id)
		for rid, p := range s.rowPos {
			if p > pos {
				s.rowPos[rid] = p - 1
			}
		}
		if s.idx != nil && s.idx.Valid() {
			if err := s.idx.DeleteRow(pos); err != nil {
				return fmt.Errorf("stream: index delete: %w", err)
			}
			if s.risks != nil {
				s.risks = append(s.risks[:pos], s.risks[pos+1:]...)
			}
		} else if s.risks != nil {
			s.risks, s.current = nil, false
		}
		s.ndrop++
	}
	return nil
}

// maintainRisk keeps the risk vector online after a window mutation. On the
// incremental path it feeds the index the new rows, commits and rescores
// only the dirty positions; on the full path it reassesses every FullEvery
// batches. Failures degrade (risk goes stale until the next release forces
// it current) instead of failing ingestion.
func (s *Stream) maintainRisk(ctx context.Context) {
	if s.closed {
		return
	}
	if s.inc != nil && !s.degraded {
		if err := s.ensureIndex(ctx); err != nil {
			s.logf("stream %s: incremental path refused: %v; degrading to periodic full reassessment", s.id, err)
			s.degraded = true
			s.current = false
		} else {
			if err := s.rescore(ctx); err != nil {
				s.logf("stream %s: online rescore: %v", s.id, err)
				s.current = false
			}
			return
		}
	}
	// Full path: reassess periodically, not on every batch.
	s.current = false
	s.sinceFull++
	if s.sinceFull >= s.opts.fullEvery() {
		if err := s.fullAssess(ctx); err != nil {
			s.logf("stream %s: periodic full reassessment: %v", s.id, err)
		}
	}
}

// ensureIndex builds (or rebuilds) the group index over the current window,
// charging the governor for its footprint. Index rows not yet tracked —
// appended since the last call — are fed in before returning.
func (s *Stream) ensureIndex(ctx context.Context) error {
	if s.idx == nil || !s.idx.Valid() {
		idx, err := mdb.BuildGroupIndex(ctx, s.d, s.incAttrs, s.opts.Semantics)
		if err != nil {
			return err
		}
		bytes := idx.EstimatedBytes() + int64(len(s.d.Rows))*8
		//governcharge:ok — swapped below and released in bulk by Close
		if err := s.gov.Reserve(govern.Memory, bytes); err != nil {
			return err
		}
		s.gov.Release(govern.Memory, s.idxCharged)
		s.idx, s.idxCharged = idx, bytes
		s.risks, s.current = nil, false
		return nil
	}
	for s.idx.Len() < len(s.d.Rows) {
		if err := s.idx.AppendRow(s.idx.Len()); err != nil {
			return err
		}
		if s.risks != nil {
			// Placeholder slot; the appended row is always in the dirty
			// set, so the zero is rescored before anyone reads it.
			s.risks = append(s.risks, 0)
		}
	}
	return nil
}

// rescore commits the index's pending mutations and re-scores exactly the
// dirty rows (all rows when no previous vector survives).
func (s *Stream) rescore(ctx context.Context) error {
	dirty, err := s.idx.Commit(ctx)
	if err != nil {
		return err
	}
	prev := s.risks
	if prev != nil && len(prev) != len(s.d.Rows) {
		prev = nil
	}
	out, err := s.inc.Rescore(ctx, s.idx, dirty, prev)
	if err != nil {
		return err
	}
	s.risks, s.current = out, true
	return nil
}

// fullAssess recomputes the whole risk vector with the measure's reference
// path — the degraded mode's source of truth. Bit-identity with the
// incremental path is the risk layer's tested property, so switching modes
// never changes a release.
func (s *Stream) fullAssess(ctx context.Context) error {
	risks, err := risk.AssessContext(ctx, s.opts.Assessor, s.d, s.opts.Semantics)
	if err != nil {
		return err
	}
	s.risks, s.current, s.sinceFull = risks, true, 0
	return nil
}

// ensureRisks makes the risk vector reflect the present window, whichever
// path is active. The release gate and the status probe call it; the
// degraded path retries the incremental build here, so a cleared budget
// restores online maintenance.
func (s *Stream) ensureRisks(ctx context.Context) error {
	if s.inc != nil && s.degraded {
		if err := s.ensureIndex(ctx); err == nil {
			s.degraded = false
			s.logf("stream %s: incremental path restored", s.id)
		}
	}
	if s.inc != nil && !s.degraded {
		if err := s.ensureIndex(ctx); err != nil {
			return err
		}
		return s.rescore(ctx)
	}
	if s.current && len(s.risks) == len(s.d.Rows) {
		return nil
	}
	return s.fullAssess(ctx)
}

// Status reports the stream's current state without touching the journal.
func (s *Stream) Status(ctx context.Context) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Rows:      len(s.d.Rows),
		Batches:   s.nbatch,
		Withdrawn: s.ndrop,
		Releases:  s.releases,
		Acked:     s.acked,
		Mode:      "incremental",
		Closed:    s.closed,
		Published: s.published,
	}
	if s.inc == nil || s.degraded {
		st.Mode = "full"
	}
	if s.pending != nil {
		st.PendingIntent = s.pending.Release
	}
	if s.current && len(s.risks) == len(s.d.Rows) {
		st.RiskCurrent = true
		for _, r := range s.risks {
			if r > s.opts.Threshold {
				st.OverThreshold++
			}
		}
	}
	return st
}

// Meta returns the opaque metadata journaled at creation.
func (s *Stream) Meta() json.RawMessage { return s.opts.Meta }

// Attrs returns the window schema (the journaled attribute list). Callers
// must not mutate it.
func (s *Stream) Attrs() []mdb.Attribute {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Attrs
}

// ID returns the stream's name.
func (s *Stream) ID() string { return s.id }

// Close drains the stream: a checkpoint record marks the clean shutdown
// (mid-window state is already durable — every accepted mutation was
// journaled before it was acknowledged), the journal is closed, and the
// governor charges are refunded. Close is idempotent.
func (s *Stream) Close(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	// Best effort: the checkpoint is a drain marker, not a durability
	// requirement — a failed append must not block shutdown.
	if err := s.w.Append(recCheckpoint, checkpointPayload{
		Batches: s.nbatch, Rows: len(s.d.Rows), Releases: s.releases, Acked: s.acked,
	}); err != nil {
		s.logf("stream %s: drain checkpoint: %v", s.id, err)
		if rerr := s.w.Repair(); rerr != nil {
			s.logf("stream %s: repairing journal during drain: %v", s.id, rerr)
		}
	}
	err := s.w.Close()
	s.gov.Release(govern.Memory, s.memCharged+s.idxCharged)
	s.memCharged, s.idxCharged = 0, 0
	return err
}

// releaseFileName names release seq's CSV next to the journal.
func (s *Stream) releaseFileName(seq int) string {
	base := strings.TrimSuffix(filepath.Base(s.path), ".wal")
	return fmt.Sprintf("%s.release-%d.csv", base, seq)
}

func digestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
