package stream

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"vadasa/internal/mdb"
)

// Digest pins the replayable state of a stream at a journal position. Two
// nodes that replayed the same journal prefix must produce identical
// digests — the window digest is the SHA-256 of the exact CSV encoding of
// the window (the same bytes a release would freeze), and the risk digest
// covers the per-row risk vector as IEEE-754 bit patterns in row order, so
// even a last-bit floating-point divergence between a primary's incremental
// scoring and a standby's full reassessment is caught, not averaged away.
type Digest struct {
	// Seq is the journal sequence number the digest covers: state after
	// applying records 1..Seq.
	Seq int `json:"seq"`
	// Rows is the window size, a cheap first-line divergence check.
	Rows int `json:"rows"`
	// Window is the hex SHA-256 of the window's CSV bytes.
	Window string `json:"window"`
	// Risk is the hex SHA-256 of the risk vector's float64 bits, row order.
	Risk string `json:"risk"`
}

// Equal reports whether two digests pin the same state at the same position.
func (d *Digest) Equal(o *Digest) bool {
	return d.Seq == o.Seq && d.Rows == o.Rows && d.Window == o.Window && d.Risk == o.Risk
}

// Digest computes the stream's state digest at its current journal tail.
// The replication shipper piggybacks it on the ship stream; a standby that
// replayed to the same sequence recomputes it and any mismatch marks the
// standby diverged.
func (s *Stream) Digest(ctx context.Context) (*Digest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.digestLocked(ctx, s.w.Seq())
}

// digestLocked computes the digest under s.mu, stamped with seq. It brings
// the risk vector current first, whichever scoring path is active — the
// incremental and full paths are bit-identical by the risk layer's tested
// property, so primary and standby agree even when they score differently.
func (s *Stream) digestLocked(ctx context.Context, seq int) (*Digest, error) {
	if err := s.ensureRisks(ctx); err != nil {
		return nil, fmt.Errorf("stream %s: digest risk state: %w", s.id, err)
	}
	var buf bytes.Buffer
	if err := mdb.WriteCSV(&buf, s.d); err != nil {
		return nil, fmt.Errorf("stream %s: digest window: %w", s.id, err)
	}
	rb := make([]byte, 8*len(s.risks))
	for i, r := range s.risks {
		binary.BigEndian.PutUint64(rb[i*8:], math.Float64bits(r))
	}
	return &Digest{
		Seq:    seq,
		Rows:   len(s.d.Rows),
		Window: digestBytes(buf.Bytes()),
		Risk:   digestBytes(rb),
	}, nil
}
