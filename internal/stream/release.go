package stream

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vadasa/internal/anon"
	"vadasa/internal/mdb"
)

// Release drives the gate: it anonymizes the window until every tuple's
// risk clears the threshold, journals the intent with the digest of the
// exact bytes to be published, writes the release file, and journals the
// publish record. The window snapshot is published exactly once — an
// already-published, unacked release is re-served unchanged, and a release
// interrupted between intent and publish is completed (here or at the next
// Open) rather than recomputed.
//
// A window that cannot be brought under threshold — the suppressor has no
// move left for some tuple — fails with a *GateClosedError and publishes
// nothing; the suppressions already journaled stay (they only ever lower
// risk) and a later Release resumes from them.
func (s *Stream) Release(ctx context.Context) (*ReleaseInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.checkFence(); err != nil {
		return nil, err
	}
	if s.pending != nil {
		// An earlier attempt crashed or failed between intent and publish:
		// the intent's promise is completed before anything else happens.
		if err := s.completePending(ctx); err != nil {
			return nil, err
		}
		return s.published, nil
	}
	if s.published != nil {
		return s.published, nil
	}
	if len(s.d.Rows) == 0 {
		return nil, fmt.Errorf("stream: window is empty; nothing to release")
	}
	if err := s.gate(ctx); err != nil {
		return nil, err
	}

	// The gate is open: freeze the bytes, journal the intent, publish.
	var buf bytes.Buffer
	if err := mdb.WriteCSV(&buf, s.d); err != nil {
		return nil, fmt.Errorf("stream: encoding release: %w", err)
	}
	p := intentPayload{Release: s.relSeq + 1, Rows: len(s.d.Rows), Digest: digestBytes(buf.Bytes())}
	if err := s.appendIntent(p); err != nil {
		return nil, err
	}
	s.relSeq = p.Release
	s.pending = &p
	s.relBytes = buf.Bytes()
	if err := s.completePending(ctx); err != nil {
		return nil, err
	}
	return s.published, nil
}

// gate runs the anonymization loop of Algorithm 2 over the window until no
// tuple's risk exceeds the threshold. Each iteration's decisions are
// journaled as one anon record before the next risk evaluation — the unit
// of recovery — and a failed journal append rolls the iteration back
// completely (values, null allocator, index) before reporting the error.
func (s *Stream) gate(ctx context.Context) error {
	qi := s.d.QuasiIdentifiers()
	suppress := anon.LocalSuppression{Choice: s.opts.Choice}
	for iter := 1; ; iter++ {
		if iter > s.opts.maxIterations() {
			return fmt.Errorf("stream: release gate exceeded %d iterations", s.opts.maxIterations())
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.ensureRisks(ctx); err != nil {
			return err
		}
		var risky []int
		for pos, r := range s.risks {
			if r > s.opts.Threshold {
				risky = append(risky, pos)
			}
		}
		if len(risky) == 0 {
			return nil
		}
		s.orderRisky(risky)

		actx := anon.NewContext(s.d, qi)
		saved := s.d.Nulls
		type step struct {
			pos, attr int
			old       mdb.Value
		}
		var steps []step
		var decs []anon.Decision
		for _, pos := range risky {
			ds, ok := suppress.Step(actx, pos)
			if !ok {
				continue
			}
			for i := range ds {
				ds[i].Risk = s.risks[pos]
				ds[i].Iteration = iter
				attr := s.d.AttrIndex(ds[i].Attr)
				steps = append(steps, step{pos: pos, attr: attr, old: ds[i].Old})
			}
			decs = append(decs, ds...)
		}
		if len(decs) == 0 {
			return &GateClosedError{Residual: len(risky)}
		}

		p := anonPayload{Release: s.relSeq + 1, Iteration: iter, Decisions: make([]decisionRecord, len(decs))}
		for i, d := range decs {
			p.Decisions[i] = encodeDecision(d)
		}
		if err := s.w.Append(recAnon, p); err != nil {
			// Unwind the whole iteration: restore the suppressed values in
			// reverse, put the null allocator back so the next attempt mints
			// the same ids, repair the journal tail. The index never saw the
			// mutation, so state is exactly pre-iteration.
			for i := len(steps) - 1; i >= 0; i-- {
				s.d.Rows[steps[i].pos].Values[steps[i].attr] = steps[i].old
			}
			s.d.Nulls = saved
			if rerr := s.w.Repair(); rerr != nil {
				s.logf("stream %s: repairing journal after failed anon append: %v", s.id, rerr)
			}
			return err
		}
		s.pendSupp += len(decs)
		if s.idx != nil && s.idx.Valid() {
			for _, st := range steps {
				if err := s.idx.SuppressCell(st.pos, st.attr); err != nil {
					return fmt.Errorf("stream: index maintenance: %w", err)
				}
			}
		} else {
			s.current = false
		}
	}
}

// orderRisky routes the risky tuples: the cycle's less-significant-first
// default (sampling weight ascending, tuple ID as the deterministic
// tiebreak), risk-descending, or window order.
func (s *Stream) orderRisky(risky []int) {
	d, risks := s.d, s.risks
	switch s.opts.Order {
	case anon.OrderByRiskDesc:
		sort.SliceStable(risky, func(i, j int) bool {
			if risks[risky[i]] != risks[risky[j]] {
				return risks[risky[i]] > risks[risky[j]]
			}
			return d.Rows[risky[i]].ID < d.Rows[risky[j]].ID
		})
	case anon.OrderByID:
		sort.SliceStable(risky, func(i, j int) bool {
			return d.Rows[risky[i]].ID < d.Rows[risky[j]].ID
		})
	default: // OrderLessSignificantFirst
		sort.SliceStable(risky, func(i, j int) bool {
			a, b := d.Rows[risky[i]], d.Rows[risky[j]]
			if a.Weight != b.Weight {
				return a.Weight < b.Weight
			}
			return a.ID < b.ID
		})
	}
}

// appendIntent journals the release declaration. It must precede the
// matching appendPublish — the streamfence vet pass enforces the pairing.
func (s *Stream) appendIntent(p intentPayload) error {
	if err := s.w.Append(recIntent, p); err != nil {
		if rerr := s.w.Repair(); rerr != nil {
			s.logf("stream %s: repairing journal after failed intent append: %v", s.id, rerr)
		}
		return err
	}
	return nil
}

// appendPublish journals the publication commit point.
func (s *Stream) appendPublish(p publishPayload) error {
	if err := s.w.Append(recPublish, p); err != nil {
		if rerr := s.w.Repair(); rerr != nil {
			s.logf("stream %s: repairing journal after failed publish append: %v", s.id, rerr)
		}
		return err
	}
	return nil
}

// completePending fulfils the journaled intent: regenerate the promised
// bytes if a crash lost the in-memory copy, verify them against the
// intent's digest, make the release file durable, then journal the publish
// record. Every step is idempotent — the file write truncates, the digest
// pins the content — so the method can run any number of times across
// crashes and still publish exactly once (the publish record is the one
// and only commit point).
func (s *Stream) completePending(ctx context.Context) error {
	// A fenced (demoted) node must never commit a publish: the promoted
	// peer may have completed and served this very release already, and a
	// second publication would break exactly-once. The check runs here —
	// the last gate before the publish record — so every caller (live
	// release, retry, startup recovery) is covered.
	if err := s.checkFence(); err != nil {
		return err
	}
	p := s.pending
	if s.relBytes == nil {
		var buf bytes.Buffer
		if err := mdb.WriteCSV(&buf, s.d); err != nil {
			return fmt.Errorf("stream: re-encoding release %d: %w", p.Release, err)
		}
		s.relBytes = buf.Bytes()
	}
	if got := digestBytes(s.relBytes); got != p.Digest {
		return fmt.Errorf("stream: release %d bytes digest %s contradict the journaled intent %s",
			p.Release, got, p.Digest)
	}
	name := s.releaseFileName(p.Release)
	path := filepath.Join(s.dir, name)
	if err := s.writeFileDurable(path, s.relBytes); err != nil {
		return fmt.Errorf("stream: writing release %d: %w", p.Release, err)
	}
	// The file is durable; the publish record commits the publication.
	// Intent was journaled by our caller (or by the incarnation that
	// crashed), which is the pairing the fence checks.
	//streamfence:ok — completes a previously journaled intent
	if err := s.appendPublish(publishPayload{Release: p.Release, File: name, Digest: p.Digest}); err != nil {
		return err
	}
	s.published = &ReleaseInfo{
		Seq:          p.Release,
		File:         name,
		Path:         path,
		Digest:       p.Digest,
		Rows:         p.Rows,
		Suppressions: s.pendSupp,
	}
	s.pending, s.relBytes, s.pendSupp = nil, nil, 0
	s.releases++
	return nil
}

// writeFileDurable writes b to path and fsyncs the file and its directory,
// so the later publish record can never refer to bytes the disk lost.
func (s *Stream) writeFileDurable(path string, b []byte) error {
	f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if dir, err := s.fs.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Ack retires the published release seq: after the journaled ack the
// release is never re-served and the window is free to mutate toward the
// next one. Acking an already-retired sequence succeeds idempotently.
func (s *Stream) Ack(ctx context.Context, seq int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.checkFence(); err != nil {
		return err
	}
	if s.pending != nil {
		return &PendingReleaseError{Release: s.pending.Release}
	}
	if s.published == nil || s.published.Seq != seq {
		if seq >= 1 && seq <= s.relSeq && s.published == nil {
			return nil // already acked — retries are harmless
		}
		return fmt.Errorf("stream: no published release %d to ack", seq)
	}
	if err := s.w.Append(recAck, ackPayload{Release: seq}); err != nil {
		if rerr := s.w.Repair(); rerr != nil {
			s.logf("stream %s: repairing journal after failed ack append: %v", s.id, rerr)
		}
		return err
	}
	s.published = nil
	s.acked++
	return nil
}

// Published returns the currently published, unacked release (nil if none).
func (s *Stream) Published() *ReleaseInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.published
}

// ReleaseBytes reads a release's bytes back, verifying them against the
// journaled digest — the serving path never returns bytes the intent did
// not promise.
func (s *Stream) ReleaseBytes(info *ReleaseInfo) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifyReleaseFile(info)
}

func (s *Stream) verifyReleaseFile(info *ReleaseInfo) ([]byte, error) {
	b, err := s.fs.ReadFile(info.Path)
	if err != nil {
		return nil, fmt.Errorf("stream: reading release %d: %w", info.Seq, err)
	}
	if got := digestBytes(b); got != info.Digest {
		return nil, fmt.Errorf("stream: release %d file digest %s contradicts journaled %s",
			info.Seq, got, info.Digest)
	}
	return b, nil
}
