package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"vadasa/internal/faultfs"
	"vadasa/internal/journal"
)

// kill simulates a process death: the journal file handle is closed without
// a drain checkpoint and the in-memory stream is abandoned. Everything the
// next Open knows comes off the disk.
func kill(s *Stream) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.w.Close()
}

// scanProtocol reads the journal and asserts the release protocol's shape:
// every publish is the immediate successor of its intent, digests agree,
// and no release sequence is published twice.
func scanProtocol(t *testing.T, path string) (publishes map[int]int) {
	t.Helper()
	it, err := journal.Records(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	publishes = make(map[int]int)
	var pending *intentPayload
	for it.Next() {
		rec := it.Record()
		switch rec.Type {
		case recIntent:
			if pending != nil {
				t.Fatalf("seq %d: intent while release %d is still pending", rec.Seq, pending.Release)
			}
			var p intentPayload
			mustUnmarshal(t, rec.Payload, &p)
			pending = &p
		case recPublish:
			var p publishPayload
			mustUnmarshal(t, rec.Payload, &p)
			if pending == nil || pending.Release != p.Release {
				t.Fatalf("seq %d: publish of release %d without immediate intent", rec.Seq, p.Release)
			}
			if pending.Digest != p.Digest {
				t.Fatalf("release %d: publish digest %s != intent digest %s", p.Release, p.Digest, pending.Digest)
			}
			publishes[p.Release]++
			pending = nil
		default:
			if pending != nil {
				t.Fatalf("seq %d: record %q between intent and publish", rec.Seq, rec.Type)
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	for rel, n := range publishes {
		if n != 1 {
			t.Fatalf("release %d published %d times", rel, n)
		}
	}
	return publishes
}

func mustUnmarshal(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatal(err)
	}
}

// controlRelease runs the same batch through a fault-free stream and
// returns the release bytes — the reference every chaos scenario's
// recovered release must equal byte for byte.
func controlRelease(t *testing.T, rows [][]string) []byte {
	t.Helper()
	ctx := context.Background()
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close(ctx)
	if _, err := s.Append(ctx, "b1", rows); err != nil {
		t.Fatal(err)
	}
	info, err := s.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ReleaseBytes(info)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A process killed between the intent and publish records must, on
// recovery, publish that release exactly once, with exactly the bytes the
// intent promised — whether the crash landed before or after the release
// file reached the disk.
func TestChaosKillBetweenIntentAndPublish(t *testing.T) {
	rows := testRows(0, 8)
	want := controlRelease(t, rows)

	// failAt 2 crashes before the release file is durable; failAt 3
	// crashes after the file but before the publish record.
	for _, failAt := range []int{2, 3} {
		t.Run(fmt.Sprintf("fsync%d", failAt), func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			faulty := faultfs.NewFaulty(faultfs.OS)
			opts := testOptions()
			opts.FS = faulty
			s := openTest(t, dir, opts)
			if _, err := s.Append(ctx, "b1", rows); err != nil {
				t.Fatal(err)
			}
			faulty.FailSync(failAt)
			if _, err := s.Release(ctx); err == nil {
				t.Fatal("release survived the injected fsync failure")
			}
			kill(s)

			s2 := openTest(t, dir, opts)
			defer s2.Close(ctx)
			info := s2.Published()
			if info == nil || info.Seq != 1 {
				t.Fatalf("recovery did not complete the pending release: %+v", info)
			}
			got, err := s2.ReleaseBytes(info)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("recovered release differs from the uninterrupted control")
			}
			if pubs := scanProtocol(t, filepath.Join(dir, "tst.wal")); pubs[1] != 1 {
				t.Fatalf("release 1 published %d times", pubs[1])
			}
			// The completed release acks and the stream moves on.
			if err := s2.Ack(ctx, 1); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Append(ctx, "b2", testRows(8, 2)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// ENOSPC during a batch append must leave no trace: the ack never went out,
// so the batch is simply not in the window — in memory or on disk — and the
// same batch ID retries cleanly once space frees.
func TestChaosENOSPCAppend(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	faulty := faultfs.NewFaulty(faultfs.OS)
	opts := testOptions()
	opts.FS = faulty
	s := openTest(t, dir, opts)

	if _, err := s.Append(ctx, "b1", testRows(0, 4)); err != nil {
		t.Fatal(err)
	}
	faulty.LimitWrites(16) // the next record tears mid-write
	_, err := s.Append(ctx, "b2", testRows(4, 4))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if st := s.Status(ctx); st.Rows != 4 || st.Batches != 1 {
		t.Fatalf("failed append mutated the window: %+v", st)
	}
	faulty.Unlimit()

	// The torn record was repaired in place: a kill + replay shows only b1.
	kill(s)
	s2 := openTest(t, dir, opts)
	defer s2.Close(ctx)
	if st := s2.Status(ctx); st.Rows != 4 || st.Batches != 1 {
		t.Fatalf("replayed window after ENOSPC: %+v", st)
	}
	// The retry (same idempotency key) is a fresh accept, not a duplicate.
	res, err := s2.Append(ctx, "b2", testRows(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicate || res.Rows != 8 {
		t.Fatalf("retry result %+v", res)
	}

	want := controlRelease(t, testRows(0, 8))
	info, err := s2.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReleaseBytes(info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("release after ENOSPC recovery differs from control")
	}
}

// A torn tail — the shape a crash mid-append leaves — is truncated on
// recovery and the stream resumes bit-identically from the last committed
// record.
func TestChaosTornTail(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	path := filepath.Join(dir, "tst.wal")
	s := openTest(t, dir, testOptions())
	if _, err := s.Append(ctx, "b1", testRows(0, 4)); err != nil {
		t.Fatal(err)
	}
	kill(s)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":3,"type":"batch","pay`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTest(t, dir, testOptions())
	defer s2.Close(ctx)
	if st := s2.Status(ctx); st.Rows != 4 || st.Batches != 1 {
		t.Fatalf("window after torn-tail repair: %+v", st)
	}
	if _, err := s2.Append(ctx, "b2", testRows(4, 4)); err != nil {
		t.Fatal(err)
	}
	info, err := s2.Release(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReleaseBytes(info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, controlRelease(t, testRows(0, 8))) {
		t.Fatal("release after torn-tail repair differs from control")
	}
}

// chaosModel mirrors what an honest client believes after each
// acknowledged operation.
type chaosModel struct {
	rows     map[int][]string // acked row ID → cells
	batches  map[string][]int // acked batch → its row IDs
	released int              // highest acked release seq
}

// Randomized crash/fault soak: a seeded schedule of appends, withdrawals,
// releases, acks, ENOSPC windows, fsync failures and kills. After every
// kill+reopen the replayed window must hold exactly the acknowledged rows,
// and at the end the journal must show each release published exactly once.
func TestChaosRandomized(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 20
	}
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			chaosRun(t, seed, rounds)
		})
	}
}

func chaosRun(t *testing.T, seed int64, rounds int) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	faulty := faultfs.NewFaulty(faultfs.OS)
	opts := testOptions()
	opts.FS = faulty
	s := openTest(t, dir, opts)
	model := &chaosModel{rows: make(map[int][]string), batches: make(map[string][]int)}
	nextBatch, nextRow := 0, 0

	checkModel := func() {
		t.Helper()
		st := s.Status(ctx)
		if st.Rows != len(model.rows) {
			t.Fatalf("window holds %d rows, %d were acknowledged", st.Rows, len(model.rows))
		}
		s.mu.Lock()
		for id := range model.rows {
			if _, ok := s.rowPos[id]; !ok {
				s.mu.Unlock()
				t.Fatalf("acknowledged row %d lost", id)
			}
		}
		s.mu.Unlock()
	}

	for round := 0; round < rounds; round++ {
		// Maybe arm a fault for the next operation.
		switch rng.Intn(6) {
		case 0:
			faulty.LimitWrites(int64(rng.Intn(200)))
		case 1:
			faulty.FailSync(1 + rng.Intn(3))
		}

		switch op := rng.Intn(10); {
		case op < 5: // append
			name := fmt.Sprintf("batch%d", nextBatch)
			rows := testRows(nextRow, 1+rng.Intn(4))
			res, err := s.Append(ctx, name, rows)
			if err == nil {
				nextBatch++
				nextRow += len(rows)
				for i, id := range res.RowIDs {
					model.rows[id] = rows[i]
					model.batches[name] = append(model.batches[name], id)
				}
			}
		case op < 6: // withdraw one known row
			for id := range model.rows {
				if s.Withdraw(ctx, []int{id}) == nil {
					delete(model.rows, id)
				}
				break
			}
		case op < 8: // release + ack
			info, err := s.Release(ctx)
			if err == nil {
				if b, err := s.ReleaseBytes(info); err != nil || digestBytes(b) != info.Digest {
					t.Fatalf("round %d: release %d bytes unreadable or digest mismatch (%v)", round, info.Seq, err)
				}
				if s.Ack(ctx, info.Seq) == nil {
					model.released = info.Seq
				}
			}
		default: // kill and recover
			kill(s)
			faulty.Unlimit()
			faulty.FailSync(0)
			var err error
			s, err = Open(ctx, "tst", filepath.Join(dir, "tst.wal"), opts)
			if err != nil {
				t.Fatalf("round %d: recovery failed: %v", round, err)
			}
			checkModel()
		}
		faulty.Unlimit()
		faulty.FailSync(0)
	}

	kill(s)
	var err error
	s, err = Open(ctx, "tst", filepath.Join(dir, "tst.wal"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(ctx)
	checkModel()
	pubs := scanProtocol(t, filepath.Join(dir, "tst.wal"))
	if len(pubs) < model.released {
		t.Fatalf("journal shows %d published releases, client acked %d", len(pubs), model.released)
	}
}
