package mdb

import (
	"context"
	"fmt"
	"sort"

	"vadasa/internal/pool"
)

// idxGroup is one maximal exact-key group maintained by a GroupIndex: the
// rows whose projections onto the index attributes are pairwise equal under
// plain constant equality, with the aggregates every risk measure reads.
// Member positions are kept ascending, so recomputed sums accumulate in the
// same order a fresh ComputeGroups scan would use — GroupInfo weight sums
// stay bit-identical to the full-recompute reference, which the cycle's
// journal replay depends on.
type idxGroup struct {
	proj  []Value
	rows  []int // member row positions, ascending
	count int
	wsum  float64
	// extra* accumulate the contribution of compatible null-bearing rows
	// under maybe-match semantics, rebuilt on every Commit.
	extraCount int
	extraWsum  float64
}

// GroupIndex is the incremental counterpart of ComputeGroups: it is built
// once per anonymization cycle and maintained under the only mutation the
// cycle's hot path performs — a local suppression replacing one cell with a
// fresh labelled null. After a batch of suppressions, Commit folds the
// pending transitions in and reports exactly the rows whose GroupInfo
// changed, so an incremental assessor re-scores only those.
//
// The maintained infos are bit-identical to ComputeGroups on the mutated
// dataset (same summation orders, same candidate orders), under both
// maybe-match and standard-null semantics. Dirtiness propagates through
// key compatibility, not just row membership: under maybe-match a new null
// enlarges the maybe-match sets of every compatible group, so Commit
// rebuilds the null phase (compatible-group sets, pairwise null matches,
// group extras) from scratch and diffs per-row infos — over-approximating
// dirty sets is impossible by construction, because dirty is defined as
// "info changed bitwise".
//
// A GroupIndex is not safe for concurrent mutation; Build and Commit
// parallelize internally through the governor-charged pool.
type GroupIndex struct {
	d   *Dataset
	idx []int
	sem Semantics

	byKey    map[string]int
	groups   []*idxGroup
	rowGroup []int // group id, or -1 for a null-bearing row under maybe-match
	nullRows []int // null-bearing row positions, ascending
	// inv is the build-time inverted index: for position j in idx, constant
	// value -> groups holding it. Groups never change their projection and
	// are never added under maybe-match, so the postings stay valid; empty
	// groups are skipped at lookup time.
	inv []map[string][]int

	infos []GroupInfo

	// pending state between SuppressCell calls and the next Commit.
	touched map[int]bool // groups that lost members
	pending int          // suppressions observed since the last Commit
	invalid bool
}

// BuildGroupIndex constructs the index over the attribute indexes idx under
// the given semantics. Projection-key hashing — the dominant cost of a full
// ComputeGroups — runs on the worker pool; the grouping fold is sequential
// so group identities match a fresh scan.
func BuildGroupIndex(ctx context.Context, d *Dataset, idx []int, sem Semantics) (*GroupIndex, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("mdb: group index needs at least one attribute")
	}
	x := &GroupIndex{
		d:        d,
		idx:      append([]int(nil), idx...),
		sem:      sem,
		byKey:    make(map[string]int, len(d.Rows)),
		rowGroup: make([]int, len(d.Rows)),
		touched:  make(map[int]bool),
	}

	keys := make([]string, len(d.Rows))
	isNull := make([]bool, len(d.Rows))
	err := pool.Run(ctx, len(d.Rows), func(lo, hi int) error {
		for pos := lo; pos < hi; pos++ {
			r := d.Rows[pos]
			if sem == MaybeMatch && x.hasNull(r) {
				isNull[pos] = true
				continue
			}
			keys[pos] = projKey(r.Values, idx)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("mdb: building group index: %w", err)
	}

	for pos := range d.Rows {
		if isNull[pos] {
			x.rowGroup[pos] = -1
			x.nullRows = append(x.nullRows, pos)
			continue
		}
		g, ok := x.byKey[keys[pos]]
		if !ok {
			g = len(x.groups)
			x.byKey[keys[pos]] = g
			proj := make([]Value, len(idx))
			for j, i := range idx {
				proj[j] = d.Rows[pos].Values[i]
			}
			x.groups = append(x.groups, &idxGroup{proj: proj})
		}
		x.groups[g].rows = append(x.groups[g].rows, pos)
		x.rowGroup[pos] = g
	}
	for _, g := range x.groups {
		refreshGroupSums(g, d)
	}

	if sem == MaybeMatch {
		x.inv = make([]map[string][]int, len(idx))
		for j := range idx {
			x.inv[j] = make(map[string][]int)
		}
		for g, grp := range x.groups {
			for j, v := range grp.proj {
				key := v.Constant() // complete rows have no nulls
				x.inv[j][key] = append(x.inv[j][key], g)
			}
		}
	}

	x.infos = make([]GroupInfo, len(d.Rows))
	if err := x.recomputeDerived(ctx, x.infos); err != nil {
		return nil, err
	}
	return x, nil
}

// Attrs returns the attribute indexes the index groups by.
func (x *GroupIndex) Attrs() []int { return append([]int(nil), x.idx...) }

// Semantics returns the null semantics the index was built under.
func (x *GroupIndex) Semantics() Semantics { return x.sem }

// Dataset returns the dataset the index maintains groups over.
func (x *GroupIndex) Dataset() *Dataset { return x.d }

// Valid reports whether the index still mirrors its dataset. Invalidate
// turns it false after a mutation the index cannot absorb (any step other
// than a single-cell suppression, e.g. global recoding); callers rebuild.
func (x *GroupIndex) Valid() bool { return !x.invalid }

// Invalidate marks the index stale; every later SuppressCell and Commit is
// rejected until the caller rebuilds.
func (x *GroupIndex) Invalidate() { x.invalid = true }

// Infos returns the per-row GroupInfo vector as of the last Build or
// Commit. The slice is owned by the index: read-only, valid until the next
// Commit.
func (x *GroupIndex) Infos() []GroupInfo { return x.infos }

// Len returns the number of rows the index currently tracks. Between row
// operations and the next Commit it always equals the dataset's row count;
// callers appending rows use it as the required position of the next
// AppendRow.
func (x *GroupIndex) Len() int { return len(x.rowGroup) }

// EstimatedBytes estimates the index's heap footprint for resource
// governors: per-row bookkeeping (rowGroup, infos, key map entry) plus
// per-group structures and the inverted index postings.
func (x *GroupIndex) EstimatedBytes() int64 {
	n := int64(len(x.d.Rows)) * (8 + 24 + 48) // rowGroup + GroupInfo + map entry
	for _, g := range x.groups {
		n += 96 + int64(len(g.rows))*8 + int64(len(g.proj))*32
	}
	for _, m := range x.inv {
		n += int64(len(m)) * 64
	}
	return n
}

// SuppressCell records that the cell (row position pos, attribute index
// attr) has been replaced by a labelled null in the underlying dataset. The
// dataset must already hold the null; the structural move (out of the exact
// group, into the null-row set or a rekeyed group) happens immediately,
// while aggregate and info maintenance is deferred to Commit.
func (x *GroupIndex) SuppressCell(pos, attr int) error {
	if x.invalid {
		return fmt.Errorf("mdb: SuppressCell on invalidated group index")
	}
	if pos < 0 || pos >= len(x.d.Rows) {
		return fmt.Errorf("mdb: SuppressCell row %d out of range", pos)
	}
	indexed := false
	for _, i := range x.idx {
		if i == attr {
			indexed = true
			break
		}
	}
	if !indexed {
		return nil // suppression outside the indexed attributes: groups unchanged
	}
	if !x.d.Rows[pos].Values[attr].IsNull() {
		return fmt.Errorf("mdb: SuppressCell(%d, %d): cell still holds a constant", pos, attr)
	}
	x.pending++

	if x.sem == StandardNulls {
		// The labelled null is a globally unique constant: the row leaves
		// its group and lands in the group of its new key (in practice a
		// fresh singleton, since null ids are never shared across cells).
		old := x.rowGroup[pos]
		x.removeMember(old, pos)
		k := projKey(x.d.Rows[pos].Values, x.idx)
		g, ok := x.byKey[k]
		if !ok {
			g = len(x.groups)
			x.byKey[k] = g
			proj := make([]Value, len(x.idx))
			for j, i := range x.idx {
				proj[j] = x.d.Rows[pos].Values[i]
			}
			x.groups = append(x.groups, &idxGroup{proj: proj})
		}
		grp := x.groups[g]
		grp.rows = insertSorted(grp.rows, pos)
		x.rowGroup[pos] = g
		x.touched[g] = true
		return nil
	}

	// Maybe-match: a first null moves the row from its exact group into the
	// null-row maybe-match structure; further nulls only widen its
	// compatibility, which Commit recomputes wholesale.
	if g := x.rowGroup[pos]; g >= 0 {
		x.removeMember(g, pos)
		x.rowGroup[pos] = -1
		x.nullRows = insertSorted(x.nullRows, pos)
	}
	return nil
}

// AppendRow records that the dataset has grown by one row at position pos,
// which must be the current tracked length (rows enter at the tail, as
// Dataset.Append appends them). The structural placement — joining an
// existing exact group, founding a new one, or entering the maybe-match
// null-row set — happens immediately; aggregate and info maintenance is
// deferred to Commit, which reports the new row (its info starts from the
// zero GroupInfo, never a committed value) and every row whose group it
// changed as dirty.
func (x *GroupIndex) AppendRow(pos int) error {
	if x.invalid {
		return fmt.Errorf("mdb: AppendRow on invalidated group index")
	}
	if pos != len(x.rowGroup) {
		return fmt.Errorf("mdb: AppendRow position %d, want tracked length %d", pos, len(x.rowGroup))
	}
	if pos >= len(x.d.Rows) {
		return fmt.Errorf("mdb: AppendRow(%d): dataset holds only %d rows", pos, len(x.d.Rows))
	}
	x.pending++
	r := x.d.Rows[pos]
	x.rowGroup = append(x.rowGroup, 0)
	x.infos = append(x.infos, GroupInfo{})

	if x.sem == MaybeMatch && x.hasNull(r) {
		x.rowGroup[pos] = -1
		// pos exceeds every tracked position, so appending keeps the
		// null-row list ascending.
		x.nullRows = append(x.nullRows, pos)
		return nil
	}
	k := projKey(r.Values, x.idx)
	g, ok := x.byKey[k]
	if !ok {
		g = len(x.groups)
		x.byKey[k] = g
		proj := make([]Value, len(x.idx))
		for j, i := range x.idx {
			proj[j] = r.Values[i]
		}
		x.groups = append(x.groups, &idxGroup{proj: proj})
		if x.inv != nil {
			// Unlike suppression-minted groups (all-null keys under
			// standard semantics only), appended groups participate in
			// maybe-match candidate lookups, so the postings must learn
			// them. compatibleGroups re-sorts candidates by first member
			// position, so posting order does not affect the result.
			for j, v := range proj {
				key := v.Constant()
				x.inv[j][key] = append(x.inv[j][key], g)
			}
		}
	}
	grp := x.groups[g]
	grp.rows = append(grp.rows, pos) // pos is the largest position: stays ascending
	x.rowGroup[pos] = g
	x.touched[g] = true
	return nil
}

// DeleteRow records that the row at position pos has been removed from the
// dataset and every later row shifted down by one — the caller compacts the
// dataset (and any parallel per-row state, such as a previous risk vector)
// before calling. The row leaves its group or the null-row set immediately;
// every tracked position above pos is remapped. Aggregates and infos are
// refreshed at Commit, which reports exactly the surviving rows whose
// GroupInfo changed.
func (x *GroupIndex) DeleteRow(pos int) error {
	if x.invalid {
		return fmt.Errorf("mdb: DeleteRow on invalidated group index")
	}
	n := len(x.rowGroup)
	if pos < 0 || pos >= n {
		return fmt.Errorf("mdb: DeleteRow position %d out of range [0,%d)", pos, n)
	}
	if len(x.d.Rows) != n-1 {
		return fmt.Errorf("mdb: DeleteRow(%d): dataset holds %d rows, want %d (compact before deleting)",
			pos, len(x.d.Rows), n-1)
	}
	x.pending++
	if g := x.rowGroup[pos]; g >= 0 {
		x.removeMember(g, pos)
	} else {
		i := sort.SearchInts(x.nullRows, pos)
		if i < len(x.nullRows) && x.nullRows[i] == pos {
			x.nullRows = append(x.nullRows[:i], x.nullRows[i+1:]...)
		}
	}
	x.rowGroup = append(x.rowGroup[:pos], x.rowGroup[pos+1:]...)
	x.infos = append(x.infos[:pos], x.infos[pos+1:]...)
	// Remap every stored position above pos. Shifting preserves relative
	// order, so member lists and null rows stay ascending and recomputed
	// float sums keep the fresh-scan accumulation order. Groups that only
	// shifted keep the same members in the same order, so their sums are
	// untouched; only the group that lost the row is marked for refresh.
	for _, grp := range x.groups {
		for i, p := range grp.rows {
			if p > pos {
				grp.rows[i] = p - 1
			}
		}
	}
	for i, p := range x.nullRows {
		if p > pos {
			x.nullRows[i] = p - 1
		}
	}
	return nil
}

func (x *GroupIndex) removeMember(g, pos int) {
	grp := x.groups[g]
	i := sort.SearchInts(grp.rows, pos)
	if i < len(grp.rows) && grp.rows[i] == pos {
		grp.rows = append(grp.rows[:i], grp.rows[i+1:]...)
	}
	x.touched[g] = true
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Commit folds every suppression recorded since the last Commit into the
// maintained aggregates and returns, sorted ascending, exactly the row
// positions whose GroupInfo changed — the dirty set an incremental assessor
// re-scores. With no pending suppressions it returns nil without touching
// anything.
func (x *GroupIndex) Commit(ctx context.Context) ([]int, error) {
	if x.invalid {
		return nil, fmt.Errorf("mdb: Commit on invalidated group index")
	}
	if x.pending == 0 && len(x.touched) == 0 {
		return nil, nil
	}
	if len(x.rowGroup) != len(x.d.Rows) {
		return nil, fmt.Errorf("mdb: Commit: index tracks %d rows, dataset holds %d", len(x.rowGroup), len(x.d.Rows))
	}
	for g := range x.touched {
		refreshGroupSums(x.groups[g], x.d)
	}
	x.touched = make(map[int]bool)
	x.pending = 0

	next := make([]GroupInfo, len(x.d.Rows))
	if err := x.recomputeDerived(ctx, next); err != nil {
		return nil, err
	}

	// Diff against the previous infos in parallel; per-chunk dirty lists
	// concatenate in chunk order, so the result is ascending regardless of
	// the worker count.
	chunks := pool.ChunkBounds(len(next))
	dirtyPer := make([][]int, len(chunks))
	err := pool.Run(ctx, len(chunks), func(lo, hi int) error {
		for c := lo; c < hi; c++ {
			for pos := chunks[c][0]; pos < chunks[c][1]; pos++ {
				if next[pos] != x.infos[pos] {
					dirtyPer[c] = append(dirtyPer[c], pos)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("mdb: committing group index: %w", err)
	}
	x.infos = next
	var dirty []int
	for _, d := range dirtyPer {
		dirty = append(dirty, d...)
	}
	return dirty, nil
}

// refreshGroupSums recomputes a group's count and weight sum from its
// member list. Members are ascending, so the floating-point accumulation
// order matches the row-order scan of ComputeGroups exactly.
func refreshGroupSums(g *idxGroup, d *Dataset) {
	g.count = len(g.rows)
	g.wsum = 0
	for _, pos := range g.rows {
		g.wsum += d.Rows[pos].Weight
	}
}

func (x *GroupIndex) hasNull(r *Row) bool {
	for _, i := range x.idx {
		if r.Values[i].IsNull() {
			return true
		}
	}
	return false
}

// recomputeDerived rebuilds everything downstream of the group structure —
// the maybe-match null phase and the per-row infos — into out. It mirrors
// the null-handling of ComputeGroups operation for operation (candidate
// order, extras accumulation order, pairwise scan order), which is what
// makes the maintained infos bit-identical to a fresh full recompute.
func (x *GroupIndex) recomputeDerived(ctx context.Context, out []GroupInfo) error {
	d := x.d
	if x.sem == MaybeMatch {
		// Always reset extras: DeleteRow can remove the last null row, and
		// stale extras from an earlier commit must not leak into the
		// null-free recompute below.
		for _, g := range x.groups {
			g.extraCount, g.extraWsum = 0, 0
		}
	}
	if x.sem == MaybeMatch && len(x.nullRows) > 0 {
		// Compatible-group sets are independent per null row: compute them
		// on the pool, ordered like a fresh scan would order its groups —
		// by first member position, the fresh-run group id order.
		compat := make([][]int, len(x.nullRows))
		err := pool.Run(ctx, len(x.nullRows), func(lo, hi int) error {
			for ni := lo; ni < hi; ni++ {
				compat[ni] = x.compatibleGroups(d.Rows[x.nullRows[ni]])
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("mdb: group index null phase: %w", err)
		}
		// Extras accumulate per group over null rows in ascending row
		// order — the same outer-loop order as ComputeGroups.
		for ni, pos := range x.nullRows {
			w := d.Rows[pos].Weight
			for _, g := range compat[ni] {
				x.groups[g].extraCount++
				x.groups[g].extraWsum += w
			}
		}
		// Per-null-row info: own contribution, then compatible groups in
		// candidate order, then the pairwise null scan in row order —
		// independent per row, so it parallelizes without reordering any
		// floating-point sum.
		err = pool.Run(ctx, len(x.nullRows), func(lo, hi int) error {
			for ni := lo; ni < hi; ni++ {
				pos := x.nullRows[ni]
				freq := 1
				wsum := d.Rows[pos].Weight
				for _, g := range compat[ni] {
					freq += x.groups[g].count
					wsum += x.groups[g].wsum
				}
				for nj, pos2 := range x.nullRows {
					if ni == nj {
						continue
					}
					if CompatibleTuple(d.Rows[pos].Values, d.Rows[pos2].Values, x.idx, MaybeMatch) {
						freq++
						wsum += d.Rows[pos2].Weight
					}
				}
				out[pos] = GroupInfo{Freq: freq, WeightSum: wsum}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("mdb: group index null phase: %w", err)
		}
	}

	return pool.Run(ctx, len(d.Rows), func(lo, hi int) error {
		for pos := lo; pos < hi; pos++ {
			g := x.rowGroup[pos]
			if g < 0 {
				continue // null-bearing row, filled above
			}
			grp := x.groups[g]
			out[pos] = GroupInfo{
				Freq:      grp.count + grp.extraCount,
				WeightSum: grp.wsum + grp.extraWsum,
			}
		}
		return nil
	})
}

// compatibleGroups returns the groups a null-bearing row may match under
// maybe-match, ordered by first member position (= the group order of a
// fresh ComputeGroups over the current dataset) with emptied groups
// dropped. Candidates come from the shortest inverted-index posting among
// the row's non-null positions and are verified in full.
func (x *GroupIndex) compatibleGroups(r *Row) []int {
	best := -1
	for j, i := range x.idx {
		v := r.Values[i]
		if v.IsNull() {
			continue
		}
		l := len(x.inv[j][v.Constant()])
		if best == -1 || l < len(x.inv[best][r.Values[x.idx[best]].Constant()]) {
			best = j
		}
	}
	var out []int
	if best == -1 {
		// All quasi-identifiers are null: compatible with every live group.
		for g, grp := range x.groups {
			if len(grp.rows) > 0 {
				out = append(out, g)
			}
		}
	} else {
		for _, g := range x.inv[best][r.Values[x.idx[best]].Constant()] {
			grp := x.groups[g]
			if len(grp.rows) == 0 {
				continue
			}
			ok := true
			for j, i := range x.idx {
				if r.Values[i].IsNull() {
					continue
				}
				if grp.proj[j].Constant() != r.Values[i].Constant() {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, g)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return x.groups[out[a]].rows[0] < x.groups[out[b]].rows[0]
	})
	return out
}
