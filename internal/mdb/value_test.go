package mdb

import (
	"testing"
	"testing/quick"
)

func TestConstValue(t *testing.T) {
	v := Const("North")
	if v.IsNull() {
		t.Fatal("Const value reported as null")
	}
	if v.Constant() != "North" {
		t.Fatalf("Constant() = %q, want North", v.Constant())
	}
	if v.String() != "North" {
		t.Fatalf("String() = %q, want North", v.String())
	}
}

func TestNullValue(t *testing.T) {
	v := Null(7)
	if !v.IsNull() {
		t.Fatal("Null value not reported as null")
	}
	if v.NullID() != 7 {
		t.Fatalf("NullID() = %d, want 7", v.NullID())
	}
	if v.String() != "⊥7" {
		t.Fatalf("String() = %q, want ⊥7", v.String())
	}
}

func TestNullZeroIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Null(0) did not panic")
		}
	}()
	Null(0)
}

func TestConstantOnNullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Constant() on a null did not panic")
		}
	}()
	Null(1).Constant()
}

func TestNullAllocatorFresh(t *testing.T) {
	var a NullAllocator
	v1, v2 := a.Fresh(), a.Fresh()
	if v1 == v2 {
		t.Fatal("Fresh returned the same null twice")
	}
	if a.Count() != 2 {
		t.Fatalf("Count() = %d, want 2", a.Count())
	}
}

func TestNullAllocatorObserve(t *testing.T) {
	var a NullAllocator
	a.Observe(10)
	if v := a.Fresh(); v.NullID() != 11 {
		t.Fatalf("Fresh after Observe(10) = ⊥%d, want ⊥11", v.NullID())
	}
}

func TestParseValue(t *testing.T) {
	var a NullAllocator
	if v := ParseValue("North", &a); v != Const("North") {
		t.Fatalf("ParseValue(North) = %v", v)
	}
	if v := ParseValue("⊥3", &a); v != Null(3) {
		t.Fatalf("ParseValue(⊥3) = %v", v)
	}
	if v := ParseValue("*", &a); !v.IsNull() || v.NullID() <= 3 {
		t.Fatalf("ParseValue(*) = %v, want fresh null after ⊥3", v)
	}
	// Malformed null markers fall back to constants.
	if v := ParseValue("⊥x", &a); v.IsNull() {
		t.Fatalf("ParseValue(⊥x) = %v, want constant", v)
	}
	if v := ParseValue("⊥0", &a); v.IsNull() {
		t.Fatalf("ParseValue(⊥0) = %v, want constant", v)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	var a NullAllocator
	for _, v := range []Value{Const(""), Const("a,b"), Const("⊥ not really"), Null(42)} {
		got := ParseValue(v.String(), &a)
		if got != v && v.Constant() != "⊥ not really" { // "⊥ not really" is not a valid null form, stays constant
			if got != v {
				t.Fatalf("round trip of %v gave %v", v, got)
			}
		}
	}
}

func TestCompatibleMaybeMatch(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Const("x"), Const("x"), true},
		{Const("x"), Const("y"), false},
		{Null(1), Const("y"), true},
		{Const("x"), Null(2), true},
		{Null(1), Null(2), true},
		{Null(1), Null(1), true},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b, MaybeMatch); got != c.want {
			t.Errorf("Compatible(%v, %v, MaybeMatch) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompatibleStandard(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Const("x"), Const("x"), true},
		{Const("x"), Const("y"), false},
		{Null(1), Const("y"), false},
		{Const("x"), Null(2), false},
		{Null(1), Null(2), false},
		{Null(1), Null(1), true},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b, StandardNulls); got != c.want {
			t.Errorf("Compatible(%v, %v, Standard) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// randomValue maps quick-generated inputs to a small value universe where
// collisions are likely, exercising all comparison branches.
func randomValue(s string, n uint64, null bool) Value {
	if null {
		return Null(n%5 + 1)
	}
	if len(s) > 1 {
		s = s[:1]
	}
	return Const(s)
}

func TestCompatibleReflexiveSymmetric(t *testing.T) {
	for _, sem := range []Semantics{MaybeMatch, StandardNulls} {
		refl := func(s string, n uint64, null bool) bool {
			v := randomValue(s, n, null)
			return Compatible(v, v, sem)
		}
		if err := quick.Check(refl, nil); err != nil {
			t.Errorf("%v not reflexive: %v", sem, err)
		}
		sym := func(s1 string, n1 uint64, null1 bool, s2 string, n2 uint64, null2 bool) bool {
			a, b := randomValue(s1, n1, null1), randomValue(s2, n2, null2)
			return Compatible(a, b, sem) == Compatible(b, a, sem)
		}
		if err := quick.Check(sym, nil); err != nil {
			t.Errorf("%v not symmetric: %v", sem, err)
		}
	}
}

// Maybe-match is deliberately not transitive: a ⊥ matches two different
// constants that do not match each other. This pins the documented property.
func TestMaybeMatchNotTransitive(t *testing.T) {
	a, b, c := Const("x"), Null(1), Const("y")
	if !Compatible(a, b, MaybeMatch) || !Compatible(b, c, MaybeMatch) {
		t.Fatal("setup broken")
	}
	if Compatible(a, c, MaybeMatch) {
		t.Fatal("x and y should not match")
	}
}

func TestSemanticsString(t *testing.T) {
	if MaybeMatch.String() != "maybe-match" || StandardNulls.String() != "standard" {
		t.Fatalf("unexpected Semantics strings: %v %v", MaybeMatch, StandardNulls)
	}
}
