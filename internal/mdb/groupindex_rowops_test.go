package mdb

import (
	"context"
	"math/rand"
	"testing"
)

// deleteDatasetRow compacts the dataset the way stream withdrawal does:
// remove the row, shift everything after it down one position.
func deleteDatasetRow(d *Dataset, pos int) {
	d.Rows = append(d.Rows[:pos], d.Rows[pos+1:]...)
}

func appendRandomRow(rng *rand.Rand, d *Dataset, qis, domain int, id *int) {
	vals := make([]Value, qis+1)
	for i := 0; i < qis; i++ {
		vals[i] = Const(string(rune('a' + rng.Intn(domain))))
	}
	vals[qis] = Const("w")
	*id++
	d.Append(&Row{ID: *id, Values: vals, Weight: 1 + rng.Float64()*4})
}

// Any interleaving of row appends, row deletes and cell suppressions
// followed by Commit must leave the index bit-identical to one rebuilt from
// scratch over the current dataset, and the dirty set must be exactly the
// positions whose info differs from the previous committed vector after the
// caller-side shift (deletes cut a slot, appends extend with the zero
// GroupInfo) — the same shift an incremental assessor applies to its
// previous risk vector.
func TestGroupIndexRowOpsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 12; trial++ {
		sem := Semantics(trial % 2)
		qis := 2 + rng.Intn(3)
		domain := 2 + rng.Intn(4)
		d := randomDataset(rng, 40+rng.Intn(120), qis, domain)
		qi := d.QuasiIdentifiers()
		nextID := len(d.Rows)
		x, err := BuildGroupIndex(context.Background(), d, qi, sem)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 8; batch++ {
			// prev mirrors what a caller holds: the last committed infos,
			// shifted alongside every row operation.
			prev := append([]GroupInfo(nil), x.Infos()...)
			ops := 1 + rng.Intn(10)
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(4); {
				case op == 0 && len(d.Rows) > 5: // delete
					pos := rng.Intn(len(d.Rows))
					deleteDatasetRow(d, pos)
					if err := x.DeleteRow(pos); err != nil {
						t.Fatal(err)
					}
					prev = append(prev[:pos], prev[pos+1:]...)
				case op == 1: // append
					appendRandomRow(rng, d, qis, domain, &nextID)
					if err := x.AppendRow(len(d.Rows) - 1); err != nil {
						t.Fatal(err)
					}
					prev = append(prev, GroupInfo{})
				default: // suppress
					pos := rng.Intn(len(d.Rows))
					attr := qi[rng.Intn(len(qi))]
					if d.Rows[pos].Values[attr].IsNull() {
						continue
					}
					d.Rows[pos].Values[attr] = d.Nulls.Fresh()
					if err := x.SuppressCell(pos, attr); err != nil {
						t.Fatal(err)
					}
				}
			}
			if x.Len() != len(d.Rows) {
				t.Fatalf("trial %d batch %d: index tracks %d rows, dataset %d", trial, batch, x.Len(), len(d.Rows))
			}
			dirty, err := x.Commit(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			rebuilt, err := BuildGroupIndex(context.Background(), d, qi, sem)
			if err != nil {
				t.Fatal(err)
			}
			sameInfos(t, sem.String(), x.Infos(), rebuilt.Infos())
			sameInfos(t, sem.String()+"/ref", x.Infos(), ComputeGroups(d, qi, sem))
			j := 0
			for pos := range x.Infos() {
				changed := x.Infos()[pos] != prev[pos]
				inDirty := j < len(dirty) && dirty[j] == pos
				if inDirty {
					j++
				}
				if changed != inDirty {
					t.Fatalf("trial %d batch %d (%s): row %d changed=%v dirty=%v",
						trial, batch, sem, pos, changed, inDirty)
				}
			}
			if j != len(dirty) {
				t.Fatalf("trial %d: %d stray dirty entries", trial, len(dirty)-j)
			}
		}
	}
}

// Deleting down to an empty null-row set must clear stale maybe-match
// extras: suppress a cell, then delete that row, and the committed infos
// must match a fresh scan over the now null-free dataset.
func TestGroupIndexDeleteLastNullRow(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := randomDataset(rng, 40, 2, 2)
	qi := d.QuasiIdentifiers()
	x, err := BuildGroupIndex(context.Background(), d, qi, MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	d.Rows[7].Values[qi[0]] = d.Nulls.Fresh()
	if err := x.SuppressCell(7, qi[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	deleteDatasetRow(d, 7)
	if err := x.DeleteRow(7); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	sameInfos(t, "post-delete", x.Infos(), ComputeGroups(d, qi, MaybeMatch))
}

// Misuse is rejected, not absorbed: out-of-order appends, appends without
// the dataset row, deletes before compaction, and anything after
// Invalidate.
func TestGroupIndexRowOpsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	d := randomDataset(rng, 20, 2, 3)
	qi := d.QuasiIdentifiers()
	x, err := BuildGroupIndex(context.Background(), d, qi, MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.AppendRow(len(d.Rows)); err == nil {
		t.Fatal("AppendRow accepted a position the dataset does not hold")
	}
	if err := x.AppendRow(3); err == nil {
		t.Fatal("AppendRow accepted an out-of-order position")
	}
	if err := x.DeleteRow(0); err == nil {
		t.Fatal("DeleteRow accepted before the dataset was compacted")
	}
	if err := x.DeleteRow(len(d.Rows)); err == nil {
		t.Fatal("DeleteRow accepted an out-of-range position")
	}
	x.Invalidate()
	if err := x.AppendRow(len(d.Rows)); err == nil {
		t.Fatal("AppendRow accepted on invalidated index")
	}
	if err := x.DeleteRow(0); err == nil {
		t.Fatal("DeleteRow accepted on invalidated index")
	}
}

// FuzzGroupIndexRowOps drives the index with an adversarial op tape: it
// must never panic, and every Commit must agree bitwise with ComputeGroups
// over the mutated dataset.
func FuzzGroupIndexRowOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xff, 0x80, 7}, int64(1))
	f.Add([]byte{1, 1, 1, 0, 0, 0, 2, 2}, int64(7))
	f.Add([]byte{}, int64(3))
	f.Fuzz(func(t *testing.T, tape []byte, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for _, sem := range []Semantics{MaybeMatch, StandardNulls} {
			d := randomDataset(rng, 8+rng.Intn(24), 2, 2)
			qi := d.QuasiIdentifiers()
			nextID := len(d.Rows)
			x, err := BuildGroupIndex(context.Background(), d, qi, sem)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range tape {
				switch b % 4 {
				case 0:
					if len(d.Rows) <= 1 {
						continue
					}
					pos := int(b/4) % len(d.Rows)
					deleteDatasetRow(d, pos)
					if err := x.DeleteRow(pos); err != nil {
						t.Fatal(err)
					}
				case 1:
					appendRandomRow(rng, d, 2, 2, &nextID)
					if err := x.AppendRow(len(d.Rows) - 1); err != nil {
						t.Fatal(err)
					}
				case 2:
					pos := int(b/4) % len(d.Rows)
					attr := qi[int(b)%len(qi)]
					if d.Rows[pos].Values[attr].IsNull() {
						continue
					}
					d.Rows[pos].Values[attr] = d.Nulls.Fresh()
					if err := x.SuppressCell(pos, attr); err != nil {
						t.Fatal(err)
					}
				case 3:
					if _, err := x.Commit(context.Background()); err != nil {
						t.Fatal(err)
					}
					sameInfos(t, sem.String(), x.Infos(), ComputeGroups(d, qi, sem))
				}
			}
			if _, err := x.Commit(context.Background()); err != nil {
				t.Fatal(err)
			}
			sameInfos(t, sem.String(), x.Infos(), ComputeGroups(d, qi, sem))
		}
	})
}
