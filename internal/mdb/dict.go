package mdb

import (
	"fmt"
	"sort"
)

// Dictionary is the Vada-SA metadata dictionary (Section 4.1): facts of the
// form MicroDB(name), Att(microDB, name, description) and
// Category(microDB, att, cat) describing every registered microdata DB at
// the meta level, which is what makes the framework schema independent.
type Dictionary struct {
	dbs map[string]*dictEntry
}

type dictEntry struct {
	name  string
	attrs []Attribute
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{dbs: make(map[string]*dictEntry)}
}

// Register records a microdata DB and its attributes. Categories present on
// the attributes are kept; they can be overridden later by Categorize.
func (dd *Dictionary) Register(db string, attrs []Attribute) error {
	if db == "" {
		return fmt.Errorf("mdb: dictionary: empty microdata DB name")
	}
	if _, ok := dd.dbs[db]; ok {
		return fmt.Errorf("mdb: dictionary: microdata DB %q already registered", db)
	}
	dd.dbs[db] = &dictEntry{name: db, attrs: append([]Attribute(nil), attrs...)}
	return nil
}

// RegisterDataset registers a dataset's schema under its own name.
func (dd *Dictionary) RegisterDataset(d *Dataset) error {
	return dd.Register(d.Name, d.Attrs)
}

// MicroDBs lists the registered microdata DB names, sorted.
func (dd *Dictionary) MicroDBs() []string {
	out := make([]string, 0, len(dd.dbs))
	for name := range dd.dbs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Attributes returns the attributes of a registered microdata DB.
func (dd *Dictionary) Attributes(db string) ([]Attribute, error) {
	e, ok := dd.dbs[db]
	if !ok {
		return nil, fmt.Errorf("mdb: dictionary: unknown microdata DB %q", db)
	}
	return append([]Attribute(nil), e.attrs...), nil
}

// Category returns the category of an attribute of a registered microdata DB.
func (dd *Dictionary) Category(db, att string) (Category, error) {
	e, ok := dd.dbs[db]
	if !ok {
		return NonIdentifying, fmt.Errorf("mdb: dictionary: unknown microdata DB %q", db)
	}
	for _, a := range e.attrs {
		if a.Name == att {
			return a.Category, nil
		}
	}
	return NonIdentifying, fmt.Errorf("mdb: dictionary: microdata DB %q has no attribute %q", db, att)
}

// SetCategory records the (inferred or expert-provided) category of an
// attribute, as the derived extensional Category facts of Figure 4.
func (dd *Dictionary) SetCategory(db, att string, c Category) error {
	e, ok := dd.dbs[db]
	if !ok {
		return fmt.Errorf("mdb: dictionary: unknown microdata DB %q", db)
	}
	for i := range e.attrs {
		if e.attrs[i].Name == att {
			e.attrs[i].Category = c
			return nil
		}
	}
	return fmt.Errorf("mdb: dictionary: microdata DB %q has no attribute %q", db, att)
}

// Apply copies the dictionary's categories onto a dataset whose name is
// registered, returning an error if the schema does not match.
func (dd *Dictionary) Apply(d *Dataset) error {
	e, ok := dd.dbs[d.Name]
	if !ok {
		return fmt.Errorf("mdb: dictionary: unknown microdata DB %q", d.Name)
	}
	if len(e.attrs) != len(d.Attrs) {
		return fmt.Errorf("mdb: dictionary: microdata DB %q has %d attributes, dataset has %d",
			d.Name, len(e.attrs), len(d.Attrs))
	}
	for i, a := range e.attrs {
		if a.Name != d.Attrs[i].Name {
			return fmt.Errorf("mdb: dictionary: attribute %d is %q in dictionary, %q in dataset",
				i, a.Name, d.Attrs[i].Name)
		}
		d.Attrs[i].Category = a.Category
		d.Attrs[i].Description = a.Description
	}
	return nil
}

// Fact is a generic ground fact used to exchange dictionary and microdata
// content with the reasoning engine (the extensional component).
type Fact struct {
	Pred string
	Args []string
}

// Facts exports the dictionary as MicroDB/Att/Cat facts.
func (dd *Dictionary) Facts() []Fact {
	var fs []Fact
	for _, db := range dd.MicroDBs() {
		e := dd.dbs[db]
		fs = append(fs, Fact{Pred: "microdb", Args: []string{db}})
		for _, a := range e.attrs {
			fs = append(fs, Fact{Pred: "att", Args: []string{db, a.Name, a.Description}})
			fs = append(fs, Fact{Pred: "cat", Args: []string{db, a.Name, a.Category.String()}})
		}
	}
	return fs
}

// DatasetFacts exports a dataset's content as Val(db, id, attr, value)
// facts, the extensional encoding used by Algorithm 2. Identifier attributes
// are implicitly dropped, as in the paper's anonymization cycle.
func DatasetFacts(d *Dataset) []Fact {
	var fs []Fact
	for _, r := range d.Rows {
		id := fmt.Sprintf("%d", r.ID)
		for i, a := range d.Attrs {
			if a.Category == Identifier {
				continue
			}
			fs = append(fs, Fact{
				Pred: "val",
				Args: []string{d.Name, id, a.Name, r.Values[i].String()},
			})
		}
	}
	return fs
}
