package mdb

import (
	"math/rand"
	"testing"
)

// figure5 builds the 7-row microdata DB of Figure 5a, where every attribute
// is a quasi-identifier.
func figure5() *Dataset {
	attrs := []Attribute{
		{Name: "Area", Category: QuasiIdentifier},
		{Name: "Sector", Category: QuasiIdentifier},
		{Name: "Employees", Category: QuasiIdentifier},
		{Name: "ResidentialRevenue", Category: QuasiIdentifier},
	}
	d := NewDataset("fig5", attrs)
	rows := [][4]string{
		{"Roma", "Textiles", "1000+", "0-30"},
		{"Roma", "Commerce", "1000+", "0-30"},
		{"Roma", "Commerce", "1000+", "0-30"},
		{"Roma", "Financial", "1000+", "0-30"},
		{"Roma", "Financial", "1000+", "0-30"},
		{"Milano", "Construction", "0-200", "60-90"},
		{"Torino", "Construction", "0-200", "60-90"},
	}
	for _, r := range rows {
		d.Append(&Row{Values: []Value{Const(r[0]), Const(r[1]), Const(r[2]), Const(r[3])}, Weight: 1})
	}
	return d
}

func TestFigure5ExactFrequencies(t *testing.T) {
	d := figure5()
	want := []int{1, 2, 2, 2, 2, 1, 1}
	got := Frequencies(d, d.QuasiIdentifiers(), MaybeMatch)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: freq = %d, want %d", i+1, got[i], want[i])
		}
	}
}

// Suppressing Sector of tuple 1 with a labelled null gives tuple 1 frequency
// 5 and tuples 2-5 frequency 3 — exactly the example of Section 4.3.
func TestFigure5MaybeMatchAfterSuppression(t *testing.T) {
	d := figure5()
	d.Rows[0].Values[1] = d.Nulls.Fresh()
	want := []int{5, 3, 3, 3, 3, 1, 1}
	got := Frequencies(d, d.QuasiIdentifiers(), MaybeMatch)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: freq = %d, want %d", i+1, got[i], want[i])
		}
	}
}

// Under the standard Skolem semantics the suppressed tuple stays unique and
// the other groups are unchanged: the null behaves as a fresh constant.
func TestFigure5StandardAfterSuppression(t *testing.T) {
	d := figure5()
	d.Rows[0].Values[1] = d.Nulls.Fresh()
	want := []int{1, 2, 2, 2, 2, 1, 1}
	got := Frequencies(d, d.QuasiIdentifiers(), StandardNulls)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: freq = %d, want %d", i+1, got[i], want[i])
		}
	}
}

// Two rows with the same labelled null in the same position match each other
// under both semantics.
func TestSameNullSymbolMatches(t *testing.T) {
	d := figure5()
	n := d.Nulls.Fresh()
	d.Rows[5].Values[0] = n // Milano -> ⊥1
	d.Rows[6].Values[0] = n // Torino -> ⊥1 (same symbol)
	for _, sem := range []Semantics{MaybeMatch, StandardNulls} {
		got := Frequencies(d, d.QuasiIdentifiers(), sem)
		if got[5] != 2 || got[6] != 2 {
			t.Errorf("%v: rows 6,7 freqs = %d,%d, want 2,2", sem, got[5], got[6])
		}
	}
}

func TestWeightSums(t *testing.T) {
	d := figure5()
	for i, w := range []float64{10, 20, 30, 40, 50, 60, 70} {
		d.Rows[i].Weight = w
	}
	gs := ComputeGroups(d, d.QuasiIdentifiers(), MaybeMatch)
	if gs[1].WeightSum != 50 { // rows 2+3: 20+30
		t.Errorf("row 2 weight sum = %g, want 50", gs[1].WeightSum)
	}
	d.Rows[0].Values[1] = d.Nulls.Fresh()
	gs = ComputeGroups(d, d.QuasiIdentifiers(), MaybeMatch)
	if gs[0].WeightSum != 150 { // rows 1..5
		t.Errorf("suppressed row weight sum = %g, want 150", gs[0].WeightSum)
	}
	if gs[1].WeightSum != 60 { // rows 2+3 plus row 1's 10
		t.Errorf("row 2 weight sum = %g, want 60", gs[1].WeightSum)
	}
}

func TestAllNullRowMatchesEverything(t *testing.T) {
	d := figure5()
	for _, i := range d.QuasiIdentifiers() {
		d.Rows[0].Values[i] = d.Nulls.Fresh()
	}
	got := Frequencies(d, d.QuasiIdentifiers(), MaybeMatch)
	if got[0] != len(d.Rows) {
		t.Errorf("all-null row freq = %d, want %d", got[0], len(d.Rows))
	}
}

func TestEmptyDataset(t *testing.T) {
	d := NewDataset("empty", []Attribute{{Name: "A", Category: QuasiIdentifier}})
	if got := ComputeGroups(d, d.QuasiIdentifiers(), MaybeMatch); len(got) != 0 {
		t.Fatalf("got %d group infos for empty dataset", len(got))
	}
}

func TestSingleRow(t *testing.T) {
	d := NewDataset("one", []Attribute{{Name: "A", Category: QuasiIdentifier}})
	d.Append(&Row{Values: []Value{Const("x")}, Weight: 3})
	gs := ComputeGroups(d, d.QuasiIdentifiers(), MaybeMatch)
	if gs[0].Freq != 1 || gs[0].WeightSum != 3 {
		t.Fatalf("got %+v, want freq 1 weight 3", gs[0])
	}
}

// Keys must not be confusable: values containing separator-like content must
// not merge distinct groups.
func TestProjKeyUnambiguous(t *testing.T) {
	d := NewDataset("tricky", []Attribute{
		{Name: "A", Category: QuasiIdentifier},
		{Name: "B", Category: QuasiIdentifier},
	})
	d.Append(&Row{ID: 1, Values: []Value{Const("ab"), Const("c")}, Weight: 1})
	d.Append(&Row{ID: 2, Values: []Value{Const("a"), Const("bc")}, Weight: 1})
	got := Frequencies(d, d.QuasiIdentifiers(), MaybeMatch)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("ambiguous keys merged groups: %v", got)
	}
}

// buildRandom creates a dataset over a small value universe with some rows
// null-suppressed, for cross-checking the indexed implementation against a
// brute-force O(n²) reference.
func buildRandom(rng *rand.Rand, n, attrs, domain, nulls int) *Dataset {
	as := make([]Attribute, attrs)
	for i := range as {
		as[i] = Attribute{Name: string(rune('A' + i)), Category: QuasiIdentifier}
	}
	d := NewDataset("rand", as)
	for i := 0; i < n; i++ {
		vals := make([]Value, attrs)
		for j := range vals {
			vals[j] = Const(string(rune('a' + rng.Intn(domain))))
		}
		d.Append(&Row{Values: vals, Weight: float64(rng.Intn(5) + 1)})
	}
	for i := 0; i < nulls; i++ {
		r := d.Rows[rng.Intn(n)]
		r.Values[rng.Intn(attrs)] = d.Nulls.Fresh()
	}
	return d
}

func bruteForceGroups(d *Dataset, idx []int, sem Semantics) []GroupInfo {
	out := make([]GroupInfo, len(d.Rows))
	for i, r := range d.Rows {
		for _, r2 := range d.Rows {
			if CompatibleTuple(r.Values, r2.Values, idx, sem) {
				out[i].Freq++
				out[i].WeightSum += r2.Weight
			}
		}
	}
	return out
}

func TestComputeGroupsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		d := buildRandom(rng, 40, 3, 3, trial%7)
		for _, sem := range []Semantics{MaybeMatch, StandardNulls} {
			want := bruteForceGroups(d, d.QuasiIdentifiers(), sem)
			got := ComputeGroups(d, d.QuasiIdentifiers(), sem)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d sem %v row %d: got %+v, want %+v",
						trial, sem, i, got[i], want[i])
				}
			}
		}
	}
}

// Property: suppressing any quasi-identifier value never decreases a row's
// maybe-match frequency (monotonicity of anonymization, Section 4.3).
func TestSuppressionMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		d := buildRandom(rng, 30, 3, 3, trial%5)
		qi := d.QuasiIdentifiers()
		before := Frequencies(d, qi, MaybeMatch)
		row := rng.Intn(len(d.Rows))
		attr := qi[rng.Intn(len(qi))]
		d.Rows[row].Values[attr] = d.Nulls.Fresh()
		after := Frequencies(d, qi, MaybeMatch)
		for i := range before {
			if after[i] < before[i] {
				t.Fatalf("trial %d: suppression decreased freq of row %d: %d -> %d",
					trial, i, before[i], after[i])
			}
		}
	}
}

func TestFrequenciesSubsetOfAttributes(t *testing.T) {
	d := figure5()
	// Group only by Area: Roma x5, Milano x1, Torino x1.
	got := Frequencies(d, []int{0}, MaybeMatch)
	want := []int{5, 5, 5, 5, 5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: freq = %d, want %d", i+1, got[i], want[i])
		}
	}
}
