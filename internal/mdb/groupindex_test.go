package mdb

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
)

// randomDataset builds a dataset with fractional weights so that any
// floating-point summation-order mistake in the index shows up as a bitwise
// mismatch rather than hiding behind integer-valued sums.
func randomDataset(rng *rand.Rand, rows, qis, domain int) *Dataset {
	attrs := make([]Attribute, qis+1)
	for i := 0; i < qis; i++ {
		attrs[i] = Attribute{Name: string(rune('A' + i)), Category: QuasiIdentifier}
	}
	attrs[qis] = Attribute{Name: "W", Category: Weight}
	d := NewDataset("rand", attrs)
	for r := 0; r < rows; r++ {
		vals := make([]Value, qis+1)
		for i := 0; i < qis; i++ {
			vals[i] = Const(string(rune('a' + rng.Intn(domain))))
		}
		w := 1 + rng.Float64()*4
		vals[qis] = Const("w")
		d.Append(&Row{ID: r + 1, Values: vals, Weight: w})
	}
	return d
}

func sameInfos(t *testing.T, label string, got, want []GroupInfo) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d infos, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: got %+v, want %+v (bitwise mismatch)", label, i, got[i], want[i])
		}
	}
}

// The freshly built index must agree bitwise with ComputeGroups, including
// on datasets that already contain nulls (the resume path rebuilds over a
// replayed, null-bearing dataset).
func TestGroupIndexBuildMatchesComputeGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(rng, 50+rng.Intn(300), 2+rng.Intn(3), 2+rng.Intn(5))
		qi := d.QuasiIdentifiers()
		for i := 0; i < rng.Intn(20); i++ {
			d.Rows[rng.Intn(len(d.Rows))].Values[qi[rng.Intn(len(qi))]] = d.Nulls.Fresh()
		}
		for _, sem := range []Semantics{MaybeMatch, StandardNulls} {
			x, err := BuildGroupIndex(context.Background(), d, qi, sem)
			if err != nil {
				t.Fatal(err)
			}
			sameInfos(t, sem.String(), x.Infos(), ComputeGroups(d, qi, sem))
		}
	}
}

// After random suppression batches, Commit-maintained infos must stay
// bit-identical to a fresh ComputeGroups, and the dirty set must be exactly
// the rows whose info changed.
func TestGroupIndexIncrementalMatchesComputeGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		sem := Semantics(trial % 2)
		d := randomDataset(rng, 80+rng.Intn(250), 3, 2+rng.Intn(4))
		qi := d.QuasiIdentifiers()
		x, err := BuildGroupIndex(context.Background(), d, qi, sem)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 6; batch++ {
			prev := append([]GroupInfo(nil), x.Infos()...)
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				pos := rng.Intn(len(d.Rows))
				attr := qi[rng.Intn(len(qi))]
				if d.Rows[pos].Values[attr].IsNull() {
					continue
				}
				d.Rows[pos].Values[attr] = d.Nulls.Fresh()
				if err := x.SuppressCell(pos, attr); err != nil {
					t.Fatal(err)
				}
			}
			dirty, err := x.Commit(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want := ComputeGroups(d, qi, sem)
			sameInfos(t, sem.String(), x.Infos(), want)
			// Dirty must be exactly the changed rows, ascending.
			j := 0
			for pos := range want {
				changed := want[pos] != prev[pos]
				inDirty := j < len(dirty) && dirty[j] == pos
				if inDirty {
					j++
				}
				if changed != inDirty {
					t.Fatalf("trial %d batch %d (%s): row %d changed=%v but dirty=%v",
						trial, batch, sem, pos, changed, inDirty)
				}
			}
			if j != len(dirty) {
				t.Fatalf("trial %d: dirty has %d extra/unsorted entries", trial, len(dirty)-j)
			}
		}
	}
}

// A suppression on an attribute outside the indexed set must leave the
// index untouched, and Commit with nothing pending must report no dirt.
func TestGroupIndexIgnoresUnindexedAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := randomDataset(rng, 100, 4, 3)
	qi := d.QuasiIdentifiers()
	sub := qi[:2]
	x, err := BuildGroupIndex(context.Background(), d, sub, MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	d.Rows[7].Values[qi[3]] = d.Nulls.Fresh()
	if err := x.SuppressCell(7, qi[3]); err != nil {
		t.Fatal(err)
	}
	dirty, err := x.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Fatalf("suppression outside the index dirtied %d rows", len(dirty))
	}
	sameInfos(t, "subset", x.Infos(), ComputeGroups(d, sub, MaybeMatch))
}

// Suppressing every quasi-identifier of a row exercises the all-null
// compatibility case (compatible with every live group).
func TestGroupIndexAllNullRow(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := randomDataset(rng, 60, 3, 3)
	qi := d.QuasiIdentifiers()
	x, err := BuildGroupIndex(context.Background(), d, qi, MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range qi {
		d.Rows[5].Values[a] = d.Nulls.Fresh()
		if err := x.SuppressCell(5, a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := x.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	sameInfos(t, "all-null", x.Infos(), ComputeGroups(d, qi, MaybeMatch))
}

// Invalidation is sticky: mutations the index cannot absorb reject further
// maintenance until a rebuild.
func TestGroupIndexInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	d := randomDataset(rng, 30, 2, 3)
	qi := d.QuasiIdentifiers()
	x, err := BuildGroupIndex(context.Background(), d, qi, MaybeMatch)
	if err != nil {
		t.Fatal(err)
	}
	x.Invalidate()
	if x.Valid() {
		t.Fatal("index still valid after Invalidate")
	}
	d.Rows[0].Values[qi[0]] = d.Nulls.Fresh()
	if err := x.SuppressCell(0, qi[0]); err == nil {
		t.Fatal("SuppressCell accepted on invalidated index")
	}
	if _, err := x.Commit(context.Background()); err == nil {
		t.Fatal("Commit accepted on invalidated index")
	}
}

// The maintained infos must not depend on the worker count: force real
// parallelism and compare against the sequential reference.
func TestGroupIndexParallelDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 6; trial++ {
		d := randomDataset(rng, 400, 3, 3)
		qi := d.QuasiIdentifiers()
		x, err := BuildGroupIndex(context.Background(), d, qi, MaybeMatch)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			pos := rng.Intn(len(d.Rows))
			attr := qi[rng.Intn(len(qi))]
			if d.Rows[pos].Values[attr].IsNull() {
				continue
			}
			d.Rows[pos].Values[attr] = d.Nulls.Fresh()
			if err := x.SuppressCell(pos, attr); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := x.Commit(context.Background()); err != nil {
			t.Fatal(err)
		}
		sameInfos(t, "parallel", x.Infos(), ComputeGroups(d, qi, MaybeMatch))
	}
}
