package mdb

import (
	"testing"
)

func transformFixture() *Dataset {
	d := NewDataset("I&G", []Attribute{
		{Name: "Id", Category: Identifier},
		{Name: "Area", Category: QuasiIdentifier},
		{Name: "Sector", Category: QuasiIdentifier},
		{Name: "Weight", Category: Weight},
	})
	d.Append(&Row{ID: 1, Values: []Value{Const("a"), Const("North"), Const("Textiles"), Const("60")}, Weight: 60})
	d.Append(&Row{ID: 2, Values: []Value{Const("b"), Const("South"), Const("Commerce"), Const("30")}, Weight: 30})
	return d
}

func TestProject(t *testing.T) {
	d := transformFixture()
	p, err := d.Project("Sector", "Area")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if len(p.Attrs) != 2 || p.Attrs[0].Name != "Sector" || p.Attrs[1].Name != "Area" {
		t.Fatalf("projected schema = %v", p.Attrs)
	}
	if p.Rows[0].Values[0] != Const("Textiles") || p.Rows[0].Values[1] != Const("North") {
		t.Fatalf("projected row = %v", p.Rows[0].Values)
	}
	if p.Rows[0].ID != 1 || p.Rows[0].Weight != 60 {
		t.Fatal("row identity/weight lost")
	}
	// Deep copy: mutating the projection leaves the original alone.
	p.Rows[0].Values[0] = Const("Mutated")
	if d.Rows[0].Values[2] != Const("Textiles") {
		t.Fatal("projection shares storage")
	}
	if _, err := d.Project("Nope"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestSelect(t *testing.T) {
	d := transformFixture()
	s := d.Select(func(r *Row) bool { return r.Weight > 40 })
	if len(s.Rows) != 1 || s.Rows[0].ID != 1 {
		t.Fatalf("selected = %v", s.Rows)
	}
	s.Rows[0].Values[1] = Const("Mutated")
	if d.Rows[0].Values[1] != Const("North") {
		t.Fatal("selection shares storage")
	}
}

func TestDropIdentifiers(t *testing.T) {
	d := transformFixture()
	p := d.DropIdentifiers()
	if p.AttrIndex("Id") != -1 {
		t.Fatal("identifier survived")
	}
	if len(p.Attrs) != 3 || len(p.Rows) != 2 {
		t.Fatalf("shape = %d attrs, %d rows", len(p.Attrs), len(p.Rows))
	}
	if got := p.QuasiIdentifiers(); len(got) != 2 {
		t.Fatalf("QIs = %v", got)
	}
}

func TestProjectCarriesNullAllocator(t *testing.T) {
	d := transformFixture()
	d.Rows[0].Values[1] = d.Nulls.Fresh() // ⊥1
	p, err := d.Project("Area")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Rows[0].Values[0].IsNull() {
		t.Fatal("null lost in projection")
	}
	// A fresh null in the projection must not collide with ⊥1.
	if v := p.Nulls.Fresh(); v.NullID() <= 1 {
		t.Fatalf("allocator not carried: fresh = %v", v)
	}
}
