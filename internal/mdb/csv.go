package mdb

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV reads a microdata DB from CSV. The first record must be a header
// matching the schema's attribute names, in order. If the schema contains a
// Weight attribute, its column is parsed as a float and mirrored into
// Row.Weight. Labelled nulls are recognized in the ⊥i and * forms.
func ReadCSV(r io.Reader, name string, attrs []Attribute) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(attrs)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("mdb: reading CSV header: %w", err)
	}
	for i, a := range attrs {
		if header[i] != a.Name {
			return nil, fmt.Errorf("mdb: CSV column %d is %q, schema expects %q", i, header[i], a.Name)
		}
	}
	d := NewDataset(name, attrs)
	w := d.WeightIndex()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mdb: reading CSV: %w", err)
		}
		row := &Row{Values: make([]Value, len(attrs))}
		for i, field := range rec {
			row.Values[i] = ParseValue(field, &d.Nulls)
		}
		if w >= 0 {
			v := row.Values[w]
			if v.IsNull() {
				return nil, fmt.Errorf("mdb: CSV line %d: weight column is a labelled null", line)
			}
			wt, err := strconv.ParseFloat(v.Constant(), 64)
			if err != nil {
				// Redacted value, unwrapped error: the raw cell must not appear
				// in the error, and strconv.NumError embeds its input string.
				return nil, fmt.Errorf("mdb: CSV line %d: bad weight %s: %v", line, v.Redacted(), errors.Unwrap(err))
			}
			row.Weight = wt
		}
		d.Append(row)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteCSV writes the dataset as CSV with a header row. Labelled nulls are
// written in their ⊥i form, so a round trip through ReadCSV preserves them.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("mdb: writing CSV header: %w", err)
	}
	rec := make([]string, len(d.Attrs))
	for _, r := range d.Rows {
		for i, v := range r.Values {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("mdb: writing CSV row %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
