package mdb

import (
	"fmt"
	"sort"
)

// Category classifies a microdata attribute for disclosure purposes
// (Section 2.1 of the paper).
type Category int

const (
	// NonIdentifying attributes disclose nothing, alone or combined.
	NonIdentifying Category = iota
	// Identifier attributes (direct identifiers) disclose the respondent
	// on their own and are dropped before risk evaluation.
	Identifier
	// QuasiIdentifier attributes disclose the respondent in combination.
	QuasiIdentifier
	// Weight marks the sampling-weight attribute.
	Weight
)

var categoryNames = map[Category]string{
	NonIdentifying:  "Non-identifying",
	Identifier:      "Identifier",
	QuasiIdentifier: "Quasi-identifier",
	Weight:          "Sampling Weight",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// ParseCategory parses the textual form produced by String (case-sensitive).
func ParseCategory(s string) (Category, error) {
	for c, name := range categoryNames {
		if s == name {
			return c, nil
		}
	}
	return NonIdentifying, fmt.Errorf("mdb: unknown category %q", s)
}

// Attribute describes one column of a microdata DB.
type Attribute struct {
	Name        string
	Description string
	Category    Category
}

// Row is one microdata tuple. ID is the artificial identifier I of
// Algorithm 2; it is stable across anonymization steps, so it doubles as the
// monotonic-aggregation contributor. Weight is the sampling weight W.
type Row struct {
	ID     int
	Values []Value
	Weight float64
}

// Clone returns a deep copy of the row.
func (r *Row) Clone() *Row {
	c := *r
	c.Values = append([]Value(nil), r.Values...)
	return &c
}

// Dataset is a microdata DB: a named relation with categorized attributes.
// The weight, if any, lives both in the Values slice (as text) and in
// Row.Weight (as a float) so declarative and native paths see the same data.
type Dataset struct {
	Name  string
	Attrs []Attribute
	Rows  []*Row

	// Nulls mints the labelled nulls used by local suppression on this
	// dataset.
	Nulls NullAllocator
}

// NewDataset returns an empty dataset with the given schema.
func NewDataset(name string, attrs []Attribute) *Dataset {
	return &Dataset{Name: name, Attrs: append([]Attribute(nil), attrs...)}
}

// AttrIndex returns the index of the named attribute, or -1.
func (d *Dataset) AttrIndex(name string) int {
	for i, a := range d.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// QuasiIdentifiers returns the indexes of all quasi-identifier attributes,
// in schema order.
func (d *Dataset) QuasiIdentifiers() []int {
	var qi []int
	for i, a := range d.Attrs {
		if a.Category == QuasiIdentifier {
			qi = append(qi, i)
		}
	}
	return qi
}

// WeightIndex returns the index of the sampling-weight attribute, or -1.
func (d *Dataset) WeightIndex() int {
	for i, a := range d.Attrs {
		if a.Category == Weight {
			return i
		}
	}
	return -1
}

// Append adds a row, assigning its ID if zero-valued IDs are in use.
func (d *Dataset) Append(r *Row) {
	if r.ID == 0 {
		r.ID = len(d.Rows) + 1
	}
	d.Rows = append(d.Rows, r)
}

// EstimatedBytes estimates the dataset's heap footprint: per-row
// pointer, struct and value storage plus string payloads. Resource
// governors charge dataset clones against their memory budget with
// this figure; it is a sizing estimate, not an allocator mirror.
func (d *Dataset) EstimatedBytes() int64 {
	n := int64(len(d.Name)) + int64(len(d.Attrs))*64
	for _, a := range d.Attrs {
		n += int64(len(a.Name))
	}
	for _, r := range d.Rows {
		n += 8 + 48 // row pointer + Row struct (ID, slice header, weight)
		for _, v := range r.Values {
			n += 32 + int64(len(v.s))
		}
	}
	return n
}

// Clone deep-copies the dataset, including the null-allocator state, so
// anonymization runs never disturb the original data.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Name:  d.Name,
		Attrs: append([]Attribute(nil), d.Attrs...),
		Rows:  make([]*Row, len(d.Rows)),
		Nulls: d.Nulls,
	}
	for i, r := range d.Rows {
		c.Rows[i] = r.Clone()
	}
	return c
}

// NullCount returns the number of labelled-null values currently stored in
// quasi-identifier positions — the “number of injected nulls” metric of
// Figures 7a, 7c and 7d.
func (d *Dataset) NullCount() int {
	qi := d.QuasiIdentifiers()
	n := 0
	for _, r := range d.Rows {
		for _, i := range qi {
			if r.Values[i].IsNull() {
				n++
			}
		}
	}
	return n
}

// Validate checks structural invariants: attribute names unique and
// non-empty, at most one weight attribute, row arity matching the schema,
// and positive weights where a weight attribute exists.
func (d *Dataset) Validate() error {
	seen := make(map[string]bool, len(d.Attrs))
	weights := 0
	for _, a := range d.Attrs {
		if a.Name == "" {
			return fmt.Errorf("mdb: dataset %q has an unnamed attribute", d.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("mdb: dataset %q has duplicate attribute %q", d.Name, a.Name)
		}
		seen[a.Name] = true
		if a.Category == Weight {
			weights++
		}
	}
	if weights > 1 {
		return fmt.Errorf("mdb: dataset %q has %d weight attributes", d.Name, weights)
	}
	for _, r := range d.Rows {
		if len(r.Values) != len(d.Attrs) {
			return fmt.Errorf("mdb: dataset %q row %d has %d values, want %d",
				d.Name, r.ID, len(r.Values), len(d.Attrs))
		}
		if weights == 1 && r.Weight <= 0 {
			return fmt.Errorf("mdb: dataset %q row %d has non-positive weight %g",
				d.Name, r.ID, r.Weight)
		}
	}
	return nil
}

// DistinctValues returns the sorted distinct constant values of an attribute.
// Labelled nulls are skipped.
func (d *Dataset) DistinctValues(attr int) []string {
	set := make(map[string]bool)
	for _, r := range d.Rows {
		if v := r.Values[attr]; !v.IsNull() {
			set[v.Constant()] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
