package mdb

import (
	"strconv"
	"strings"
)

// GroupInfo describes the aggregation group a row belongs to when rows are
// grouped by a set of quasi-identifiers: the group cardinality (the sample
// frequency f of the row's combination) and the sum of sampling weights over
// the group (the estimator of the population frequency).
type GroupInfo struct {
	Freq      int
	WeightSum float64
}

// projKey builds an unambiguous exact-match key for the projection of values
// onto idx. Labelled nulls are encoded with their symbol so that under
// StandardNulls they behave as ordinary (globally unique) constants.
func projKey(values []Value, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		v := values[i]
		if v.IsNull() {
			b.WriteString("\x01")
			b.WriteString(strconv.FormatUint(v.NullID(), 10))
		} else {
			s := v.Constant()
			b.WriteString(strconv.Itoa(len(s)))
			b.WriteString("\x00")
			b.WriteString(s)
		}
	}
	return b.String()
}

// exactGroup is a maximal set of rows whose projections are pairwise equal
// under plain constant equality.
type exactGroup struct {
	proj  []Value // representative projection, indexed like idx
	count int
	wsum  float64
	// extra accumulates the contribution of compatible null-bearing rows
	// under maybe-match semantics.
	extraCount int
	extraWsum  float64
}

// ComputeGroups returns, for every row of d (by slice position), the
// frequency and weight sum of its aggregation group over the attribute
// indexes idx, under the given null semantics.
//
// Under MaybeMatch a row containing labelled nulls belongs to every group it
// is compatible with; its own frequency is the number of rows compatible
// with it (including itself), and each compatible exact group sees its
// cardinality increased — the groups no longer partition the dataset
// (Section 4.3). Under StandardNulls each labelled null is only equal to
// itself, so grouping degenerates to exact matching with null symbols as
// unique constants.
func ComputeGroups(d *Dataset, idx []int, sem Semantics) []GroupInfo {
	out := make([]GroupInfo, len(d.Rows))
	if len(d.Rows) == 0 {
		return out
	}

	groups := make([]*exactGroup, 0, 64)
	byKey := make(map[string]int, len(d.Rows))
	// rowGroup[i] is the exact group of row i, or -1 for a null-bearing
	// row under maybe-match.
	rowGroup := make([]int, len(d.Rows))
	var nullRows []int

	hasNull := func(r *Row) bool {
		for _, i := range idx {
			if r.Values[i].IsNull() {
				return true
			}
		}
		return false
	}

	for pos, r := range d.Rows {
		if sem == MaybeMatch && hasNull(r) {
			rowGroup[pos] = -1
			nullRows = append(nullRows, pos)
			continue
		}
		k := projKey(r.Values, idx)
		g, ok := byKey[k]
		if !ok {
			g = len(groups)
			byKey[k] = g
			proj := make([]Value, len(idx))
			for j, i := range idx {
				proj[j] = r.Values[i]
			}
			groups = append(groups, &exactGroup{proj: proj})
		}
		groups[g].count++
		groups[g].wsum += r.Weight
		rowGroup[pos] = g
	}

	if len(nullRows) > 0 {
		// Inverted index: for each position j in idx, constant value →
		// exact groups holding it. Used to find the candidate groups a
		// null-bearing row may match without scanning all groups.
		inv := make([]map[string][]int, len(idx))
		for j := range idx {
			inv[j] = make(map[string][]int)
		}
		for g, grp := range groups {
			for j, v := range grp.proj {
				key := v.Constant() // complete rows have no nulls
				inv[j][key] = append(inv[j][key], g)
			}
		}

		compatibleGroups := func(r *Row) []int {
			// Pick the non-null position with the shortest posting
			// list, then verify candidates in full.
			best := -1
			for j, i := range idx {
				v := r.Values[i]
				if v.IsNull() {
					continue
				}
				l := len(inv[j][v.Constant()])
				if best == -1 || l < len(inv[best][r.Values[idx[best]].Constant()]) {
					best = j
				}
			}
			if best == -1 {
				// All quasi-identifiers are null: compatible with
				// every group.
				all := make([]int, len(groups))
				for g := range groups {
					all[g] = g
				}
				return all
			}
			cands := inv[best][r.Values[idx[best]].Constant()]
			var out []int
			for _, g := range cands {
				ok := true
				for j, i := range idx {
					if r.Values[i].IsNull() {
						continue
					}
					if groups[g].proj[j].Constant() != r.Values[i].Constant() {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, g)
				}
			}
			return out
		}

		nullCompat := make([][]int, len(nullRows)) // groups per null row
		for ni, pos := range nullRows {
			gs := compatibleGroups(d.Rows[pos])
			nullCompat[ni] = gs
			for _, g := range gs {
				groups[g].extraCount++
				groups[g].extraWsum += d.Rows[pos].Weight
			}
		}

		// Pairwise compatibility among null-bearing rows (a null matches
		// a null). Null-bearing rows are few — only anonymized tuples —
		// so the quadratic pass is cheap in practice.
		for ni, pos := range nullRows {
			freq := 1
			wsum := d.Rows[pos].Weight
			for _, g := range nullCompat[ni] {
				freq += groups[g].count
				wsum += groups[g].wsum
			}
			for nj, pos2 := range nullRows {
				if ni == nj {
					continue
				}
				if CompatibleTuple(d.Rows[pos].Values, d.Rows[pos2].Values, idx, MaybeMatch) {
					freq++
					wsum += d.Rows[pos2].Weight
				}
			}
			out[pos] = GroupInfo{Freq: freq, WeightSum: wsum}
		}
	}

	for pos := range d.Rows {
		g := rowGroup[pos]
		if g < 0 {
			continue // already filled above
		}
		grp := groups[g]
		out[pos] = GroupInfo{
			Freq:      grp.count + grp.extraCount,
			WeightSum: grp.wsum + grp.extraWsum,
		}
	}
	return out
}

// Frequencies is shorthand for ComputeGroups when only the sample
// frequencies are needed.
func Frequencies(d *Dataset, idx []int, sem Semantics) []int {
	gs := ComputeGroups(d, idx, sem)
	out := make([]int, len(gs))
	for i, g := range gs {
		out[i] = g.Freq
	}
	return out
}
