// Package mdb defines the microdata model at the core of Vada-SA: attribute
// values that are either constants or labelled nulls, attributes with
// disclosure categories, microdata datasets, the metadata dictionary, and the
// maybe-match grouping machinery used by every risk measure.
package mdb

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a single attribute value of a microdata tuple. It is either a
// constant (a string; numeric attributes are stored in their textual form or
// binned, as in the paper's microdata DBs) or a labelled null ⊥ᵢ introduced by
// local suppression. The zero Value is the empty constant.
type Value struct {
	null uint64 // 0 means constant; otherwise the labelled-null id
	s    string //conftaint:source raw microdata cell text
}

// Const returns a constant value.
func Const(s string) Value { return Value{s: s} }

// Null returns the labelled null with the given id. Ids must be positive;
// use a NullAllocator to mint fresh ones.
func Null(id uint64) Value {
	if id == 0 {
		panic("mdb: labelled null id must be positive")
	}
	return Value{null: id}
}

// IsNull reports whether v is a labelled null.
func (v Value) IsNull() bool { return v.null != 0 }

// NullID returns the labelled-null id, or 0 if v is a constant.
func (v Value) NullID() uint64 { return v.null }

// Constant returns the constant string; it panics on labelled nulls so that
// accidental use of a null as data is caught early.
func (v Value) Constant() string {
	if v.null != 0 {
		panic(fmt.Sprintf("mdb: Constant called on labelled null ⊥%d", v.null))
	}
	return v.s
}

// String renders constants verbatim and labelled nulls as ⊥i.
func (v Value) String() string {
	if v.null != 0 {
		return "⊥" + strconv.FormatUint(v.null, 10)
	}
	return v.s
}

// ParseValue parses the textual form produced by String. The token "*" is
// accepted as an anonymous labelled null and is assigned a fresh id from a.
func ParseValue(s string, a *NullAllocator) Value {
	if s == "*" {
		return a.Fresh()
	}
	if rest, ok := strings.CutPrefix(s, "⊥"); ok {
		if id, err := strconv.ParseUint(rest, 10, 64); err == nil && id > 0 {
			a.Observe(id)
			return Null(id)
		}
	}
	return Const(s)
}

// NullAllocator mints fresh labelled-null ids. The zero value is ready to use.
type NullAllocator struct {
	n uint64
}

// Fresh returns a labelled null never returned before by this allocator.
func (a *NullAllocator) Fresh() Value {
	a.n++
	return Null(a.n)
}

// Observe tells the allocator that id is in use, so Fresh never collides
// with nulls read back from serialized data.
func (a *NullAllocator) Observe(id uint64) {
	if id > a.n {
		a.n = id
	}
}

// Count returns how many nulls have been allocated or observed.
func (a *NullAllocator) Count() uint64 { return a.n }

// Semantics selects how labelled nulls compare during group formation
// (Section 4.3 of the paper).
type Semantics int

const (
	// MaybeMatch is the null-tolerant semantics adopted by Vada-SA:
	// q =⊥ q' holds iff the two values are the same constant, or at least
	// one of them is a labelled null.
	MaybeMatch Semantics = iota
	// StandardNulls is the Skolem-chase semantics used as the ablation
	// baseline in Figure 7c: two values are equal iff they are the same
	// constant or the same labelled-null symbol.
	StandardNulls
)

// String implements fmt.Stringer.
func (s Semantics) String() string {
	switch s {
	case MaybeMatch:
		return "maybe-match"
	case StandardNulls:
		return "standard"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// Compatible reports whether a =⊥ b holds under the given semantics.
func Compatible(a, b Value, sem Semantics) bool {
	switch sem {
	case MaybeMatch:
		if a.null != 0 || b.null != 0 {
			return true
		}
		return a.s == b.s
	case StandardNulls:
		return a == b
	default:
		panic(fmt.Sprintf("mdb: unknown semantics %d", int(sem)))
	}
}

// CompatibleTuple reports whether the projections of two rows onto the given
// attribute indexes are pairwise compatible under sem.
func CompatibleTuple(a, b []Value, idx []int, sem Semantics) bool {
	for _, i := range idx {
		if !Compatible(a[i], b[i], sem) {
			return false
		}
	}
	return true
}
