package mdb

import (
	"fmt"
)

// Project returns a new dataset containing only the named attributes, in the
// given order, with rows copied. Analysts use it to build release views —
// e.g. dropping direct identifiers before an exchange (the first step of the
// anonymization cycle is exactly this projection).
func (d *Dataset) Project(names ...string) (*Dataset, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := d.AttrIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("mdb: dataset %q has no attribute %q", d.Name, n)
		}
		idx[i] = j
	}
	attrs := make([]Attribute, len(idx))
	for i, j := range idx {
		attrs[i] = d.Attrs[j]
	}
	out := NewDataset(d.Name, attrs)
	out.Nulls = d.Nulls
	for _, r := range d.Rows {
		values := make([]Value, len(idx))
		for i, j := range idx {
			values[i] = r.Values[j]
		}
		out.Append(&Row{ID: r.ID, Values: values, Weight: r.Weight})
	}
	return out, nil
}

// Select returns a new dataset with copies of the rows satisfying keep.
// Row IDs are preserved, so risk results remain addressable.
func (d *Dataset) Select(keep func(*Row) bool) *Dataset {
	out := NewDataset(d.Name, d.Attrs)
	out.Nulls = d.Nulls
	for _, r := range d.Rows {
		if keep(r) {
			out.Append(r.Clone())
		}
	}
	return out
}

// DropIdentifiers returns a copy of the dataset without its direct-identifier
// attributes — the mandatory first step before sharing (Section 4.1: direct
// identifiers must not be disclosed).
func (d *Dataset) DropIdentifiers() *Dataset {
	var names []string
	for _, a := range d.Attrs {
		if a.Category != Identifier {
			names = append(names, a.Name)
		}
	}
	out, err := d.Project(names...)
	if err != nil {
		// Unreachable: names come from the schema itself.
		panic(err)
	}
	return out
}
