package mdb

import (
	"crypto/sha256"
	"encoding/hex"
)

// Redaction: the only sanctioned way for cell values to appear in error
// strings, log lines and other diagnostics. Raw cell text identifies
// respondents — that is the whole premise of the exchange — so operational
// surfaces get a short, stable digest instead: enough to correlate two
// reports of the same value, useless for recovering it. The conftaint
// analyzer enforces the discipline; these helpers are its escape route.

// Redacted renders v safely for diagnostics: labelled nulls keep their
// public ⊥i form (the suppression output is not confidential), constants
// become an 8-hex-digit digest.
//
//conftaint:sanitize
func (v Value) Redacted() string {
	if v.null != 0 {
		return v.String()
	}
	return RedactString(v.s)
}

// RedactString digests raw cell text for diagnostics.
//
//conftaint:sanitize
func RedactString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return "sha256:" + hex.EncodeToString(sum[:4])
}
