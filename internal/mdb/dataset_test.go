package mdb

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func igAttrs() []Attribute {
	return []Attribute{
		{Name: "Id", Category: Identifier},
		{Name: "Area", Category: QuasiIdentifier},
		{Name: "Sector", Category: QuasiIdentifier},
		{Name: "Weight", Category: Weight},
	}
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset("I&G", igAttrs())
	if d.AttrIndex("Sector") != 2 || d.AttrIndex("nope") != -1 {
		t.Fatal("AttrIndex misbehaves")
	}
	if got := d.QuasiIdentifiers(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("QuasiIdentifiers = %v", got)
	}
	if d.WeightIndex() != 3 {
		t.Fatalf("WeightIndex = %d", d.WeightIndex())
	}
	d.Append(&Row{Values: []Value{Const("1"), Const("North"), Const("Textiles"), Const("60")}, Weight: 60})
	if d.Rows[0].ID != 1 {
		t.Fatalf("auto ID = %d", d.Rows[0].ID)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	dup := NewDataset("x", []Attribute{{Name: "A"}, {Name: "A"}})
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate attrs: err = %v", err)
	}
	unnamed := NewDataset("x", []Attribute{{Name: ""}})
	if err := unnamed.Validate(); err == nil || !strings.Contains(err.Error(), "unnamed") {
		t.Errorf("unnamed attr: err = %v", err)
	}
	twoW := NewDataset("x", []Attribute{{Name: "A", Category: Weight}, {Name: "B", Category: Weight}})
	if err := twoW.Validate(); err == nil || !strings.Contains(err.Error(), "weight") {
		t.Errorf("two weights: err = %v", err)
	}
	arity := NewDataset("x", []Attribute{{Name: "A"}})
	arity.Append(&Row{Values: []Value{Const("1"), Const("2")}})
	if err := arity.Validate(); err == nil || !strings.Contains(err.Error(), "values") {
		t.Errorf("arity: err = %v", err)
	}
	badW := NewDataset("x", []Attribute{{Name: "W", Category: Weight}})
	badW.Append(&Row{Values: []Value{Const("0")}, Weight: 0})
	if err := badW.Validate(); err == nil || !strings.Contains(err.Error(), "weight") {
		t.Errorf("bad weight: err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := NewDataset("I&G", igAttrs())
	d.Append(&Row{Values: []Value{Const("1"), Const("North"), Const("Textiles"), Const("60")}, Weight: 60})
	c := d.Clone()
	c.Rows[0].Values[1] = c.Nulls.Fresh()
	c.Attrs[1].Category = NonIdentifying
	if d.Rows[0].Values[1] != Const("North") {
		t.Fatal("Clone shares row storage")
	}
	if d.Attrs[1].Category != QuasiIdentifier {
		t.Fatal("Clone shares attr storage")
	}
	// Null allocators must be independent after cloning.
	if v := d.Nulls.Fresh(); v.NullID() != 1 {
		t.Fatalf("original allocator disturbed: %v", v)
	}
}

func TestNullCount(t *testing.T) {
	d := NewDataset("I&G", igAttrs())
	d.Append(&Row{Values: []Value{Const("1"), Const("North"), Const("Textiles"), Const("60")}, Weight: 60})
	d.Append(&Row{Values: []Value{Const("2"), Const("South"), Const("Commerce"), Const("30")}, Weight: 30})
	if d.NullCount() != 0 {
		t.Fatalf("NullCount = %d, want 0", d.NullCount())
	}
	d.Rows[0].Values[1] = d.Nulls.Fresh()
	d.Rows[0].Values[2] = d.Nulls.Fresh()
	d.Rows[1].Values[0] = d.Nulls.Fresh() // identifier: not counted
	if d.NullCount() != 2 {
		t.Fatalf("NullCount = %d, want 2", d.NullCount())
	}
}

func TestDistinctValues(t *testing.T) {
	d := NewDataset("I&G", igAttrs())
	for _, area := range []string{"North", "South", "North", "Center"} {
		d.Append(&Row{Values: []Value{Const("i"), Const(area), Const("Commerce"), Const("1")}, Weight: 1})
	}
	d.Rows[3].Values[1] = d.Nulls.Fresh()
	got := d.DistinctValues(1)
	if len(got) != 2 || got[0] != "North" || got[1] != "South" {
		t.Fatalf("DistinctValues = %v", got)
	}
}

func TestCategoryStringAndParse(t *testing.T) {
	for _, c := range []Category{NonIdentifying, Identifier, QuasiIdentifier, Weight} {
		back, err := ParseCategory(c.String())
		if err != nil || back != c {
			t.Errorf("round trip of %v failed: %v %v", c, back, err)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("ParseCategory accepted bogus input")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset("I&G", igAttrs())
	d.Append(&Row{Values: []Value{Const("1"), Const("North"), Const("Textiles"), Const("60")}, Weight: 60})
	d.Append(&Row{Values: []Value{Const("2"), Const("South, east"), Const("Commerce"), Const("30.5")}, Weight: 30.5})
	d.Rows[0].Values[2] = d.Nulls.Fresh()

	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, "I&G", igAttrs())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back.Rows) != 2 {
		t.Fatalf("got %d rows", len(back.Rows))
	}
	if !back.Rows[0].Values[2].IsNull() {
		t.Error("null value lost in round trip")
	}
	if back.Rows[1].Values[1] != Const("South, east") {
		t.Errorf("comma-bearing value mangled: %v", back.Rows[1].Values[1])
	}
	if back.Rows[1].Weight != 30.5 {
		t.Errorf("weight = %g, want 30.5", back.Rows[1].Weight)
	}
	// The allocator must have observed the serialized null.
	if v := back.Nulls.Fresh(); v.NullID() != d.Rows[0].Values[2].NullID()+1 {
		t.Errorf("allocator did not observe serialized null: fresh = %v", v)
	}
}

func TestReadCSVErrors(t *testing.T) {
	attrs := igAttrs()
	if _, err := ReadCSV(strings.NewReader("Wrong,Area,Sector,Weight\n"), "x", attrs); err == nil {
		t.Error("header mismatch not detected")
	}
	if _, err := ReadCSV(strings.NewReader("Id,Area,Sector,Weight\n1,N,T,notanumber\n"), "x", attrs); err == nil {
		t.Error("bad weight not detected")
	}
	if _, err := ReadCSV(strings.NewReader("Id,Area,Sector,Weight\n1,N,T,⊥1\n"), "x", attrs); err == nil {
		t.Error("null weight not detected")
	}
	if _, err := ReadCSV(strings.NewReader("Id,Area\n"), "x", attrs); err == nil {
		t.Error("wrong column count not detected")
	}
}

func TestDictionary(t *testing.T) {
	dd := NewDictionary()
	if err := dd.Register("I&G", igAttrs()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := dd.Register("I&G", igAttrs()); err == nil {
		t.Error("duplicate Register not rejected")
	}
	if err := dd.Register("", nil); err == nil {
		t.Error("empty name not rejected")
	}
	if got := dd.MicroDBs(); len(got) != 1 || got[0] != "I&G" {
		t.Fatalf("MicroDBs = %v", got)
	}
	c, err := dd.Category("I&G", "Area")
	if err != nil || c != QuasiIdentifier {
		t.Fatalf("Category = %v, %v", c, err)
	}
	if _, err := dd.Category("nope", "Area"); err == nil {
		t.Error("unknown DB not rejected")
	}
	if _, err := dd.Category("I&G", "nope"); err == nil {
		t.Error("unknown attribute not rejected")
	}
	if err := dd.SetCategory("I&G", "Area", NonIdentifying); err != nil {
		t.Fatalf("SetCategory: %v", err)
	}
	if c, _ := dd.Category("I&G", "Area"); c != NonIdentifying {
		t.Fatal("SetCategory did not stick")
	}
	if err := dd.SetCategory("I&G", "nope", Weight); err == nil {
		t.Error("SetCategory on unknown attribute not rejected")
	}

	d := NewDataset("I&G", igAttrs())
	if err := dd.Apply(d); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if d.Attrs[1].Category != NonIdentifying {
		t.Fatal("Apply did not copy the category")
	}
	other := NewDataset("other", igAttrs())
	if err := dd.Apply(other); err == nil {
		t.Error("Apply to unregistered DB not rejected")
	}
	renamed := NewDataset("I&G", []Attribute{{Name: "X"}, {Name: "Area"}, {Name: "Sector"}, {Name: "Weight"}})
	if err := dd.Apply(renamed); err == nil {
		t.Error("Apply with mismatched schema not rejected")
	}
}

func TestDictionaryFacts(t *testing.T) {
	dd := NewDictionary()
	if err := dd.Register("I&G", igAttrs()[:2]); err != nil {
		t.Fatal(err)
	}
	fs := dd.Facts()
	// microdb + 2*(att+cat) = 5 facts.
	if len(fs) != 5 {
		t.Fatalf("got %d facts: %v", len(fs), fs)
	}
	if fs[0].Pred != "microdb" || fs[0].Args[0] != "I&G" {
		t.Fatalf("first fact = %v", fs[0])
	}
}

func TestDatasetFactsDropIdentifiers(t *testing.T) {
	d := NewDataset("I&G", igAttrs())
	d.Append(&Row{Values: []Value{Const("42"), Const("North"), Const("Textiles"), Const("60")}, Weight: 60})
	fs := DatasetFacts(d)
	for _, f := range fs {
		if f.Args[2] == "Id" {
			t.Fatalf("identifier attribute leaked into facts: %v", f)
		}
	}
	if len(fs) != 3 { // Area, Sector, Weight
		t.Fatalf("got %d facts, want 3", len(fs))
	}
}

// Property: any dataset of printable values round-trips through CSV
// unchanged, including labelled nulls and weights.
func TestCSVRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := []string{"North", "a,b", `quo"ted`, "x\ny", " pad ", "", "⊥ish", "1.5"}
	for trial := 0; trial < 20; trial++ {
		attrs := []Attribute{
			{Name: "A", Category: QuasiIdentifier},
			{Name: "B", Category: QuasiIdentifier},
			{Name: "W", Category: Weight},
		}
		d := NewDataset("prop", attrs)
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			w := float64(1 + rng.Intn(500))
			var a, b Value
			if rng.Intn(5) == 0 {
				a = d.Nulls.Fresh()
			} else {
				a = Const(values[rng.Intn(len(values))])
			}
			if rng.Intn(5) == 0 {
				b = d.Nulls.Fresh()
			} else {
				b = Const(values[rng.Intn(len(values))])
			}
			d.Append(&Row{Values: []Value{a, b, Const(strconv.FormatFloat(w, 'g', -1, 64))}, Weight: w})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			t.Fatalf("trial %d: WriteCSV: %v", trial, err)
		}
		back, err := ReadCSV(&buf, "prop", attrs)
		if err != nil {
			t.Fatalf("trial %d: ReadCSV: %v", trial, err)
		}
		if len(back.Rows) != len(d.Rows) {
			t.Fatalf("trial %d: %d rows back, want %d", trial, len(back.Rows), len(d.Rows))
		}
		for i := range d.Rows {
			if back.Rows[i].Weight != d.Rows[i].Weight {
				t.Fatalf("trial %d row %d: weight %g != %g", trial, i, back.Rows[i].Weight, d.Rows[i].Weight)
			}
			for j := range d.Rows[i].Values {
				if back.Rows[i].Values[j] != d.Rows[i].Values[j] {
					t.Fatalf("trial %d row %d col %d: %v != %v",
						trial, i, j, back.Rows[i].Values[j], d.Rows[i].Values[j])
				}
			}
		}
	}
}
