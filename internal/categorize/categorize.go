package categorize

import (
	"fmt"
	"sort"

	"vadasa/internal/mdb"
)

// Entry is one item of the experience base (ExpBase of Algorithm 1): a known
// attribute name and its category.
type Entry struct {
	Attr     string
	Category mdb.Category
}

// Conflict reports that an attribute inherited two different categories —
// the violation of the EGD in Rule 4 of Algorithm 1, which Vada-SA hands to
// a human rather than resolving automatically.
type Conflict struct {
	Attr string
	// Candidates maps each inherited category to one explanation.
	Candidates map[mdb.Category]string
}

func (c Conflict) String() string {
	cats := make([]string, 0, len(c.Candidates))
	for cat := range c.Candidates {
		cats = append(cats, cat.String())
	}
	sort.Strings(cats)
	return fmt.Sprintf("attribute %q inherits conflicting categories %v", c.Attr, cats)
}

// Result is the outcome of a categorization run.
type Result struct {
	// Categories holds the single category inferred per attribute.
	Categories map[string]mdb.Category
	// Explanations records, per categorized attribute, which experience
	// entry and similarity function motivated the decision.
	Explanations map[string]string
	// Conflicts lists attributes with contradictory inheritances; they
	// are left uncategorized for manual inspection.
	Conflicts []Conflict
	// Unknown lists attributes no experience entry is similar to — the
	// labelled-null placeholders of Rule 1, awaiting expert input.
	Unknown []string
}

// Categorizer runs Algorithm 1 over an experience base with pluggable
// similarity functions.
type Categorizer struct {
	Experience []Entry
	Sims       []Similarity
	// Consolidate enables Rule 3: inferred categories are fed back into
	// the experience base so later attributes can chain on them.
	Consolidate bool
}

// Categorize infers a category for each attribute name.
func (c *Categorizer) Categorize(attrs []string) *Result {
	sims := c.Sims
	if len(sims) == 0 {
		sims = []Similarity{Exact{}}
	}
	res := &Result{
		Categories:   make(map[string]mdb.Category),
		Explanations: make(map[string]string),
	}
	exp := append([]Entry(nil), c.Experience...)
	conflicted := make(map[string]map[mdb.Category]string)

	pending := append([]string(nil), attrs...)
	for {
		var next []string
		progress := false
		for _, attr := range pending {
			candidates := make(map[mdb.Category]string)
			for _, e := range exp {
				for _, sim := range sims {
					if sim.Similar(attr, e.Attr) {
						if _, ok := candidates[e.Category]; !ok {
							candidates[e.Category] = fmt.Sprintf(
								"%q ~ %q via %s", attr, e.Attr, sim.Name())
						}
						break
					}
				}
			}
			switch len(candidates) {
			case 0:
				next = append(next, attr)
			case 1:
				for cat, why := range candidates {
					res.Categories[attr] = cat
					res.Explanations[attr] = why
					if c.Consolidate {
						exp = append(exp, Entry{Attr: attr, Category: cat})
					}
				}
				progress = true
			default:
				conflicted[attr] = candidates
				progress = true
			}
		}
		pending = next
		if !progress || len(pending) == 0 {
			break
		}
	}

	res.Unknown = pending
	sort.Strings(res.Unknown)
	names := make([]string, 0, len(conflicted))
	for attr := range conflicted {
		names = append(names, attr)
	}
	sort.Strings(names)
	for _, attr := range names {
		res.Conflicts = append(res.Conflicts, Conflict{Attr: attr, Candidates: conflicted[attr]})
	}
	return res
}

// Apply writes the inferred categories into a dictionary for the given
// microdata DB, skipping conflicted and unknown attributes.
func (r *Result) Apply(dict *mdb.Dictionary, db string) error {
	for attr, cat := range r.Categories {
		if err := dict.SetCategory(db, attr, cat); err != nil {
			return err
		}
	}
	return nil
}

// DefaultExperience is a starter experience base reflecting the Bank of
// Italy naming conventions used throughout the paper's examples.
func DefaultExperience() []Entry {
	return []Entry{
		{"id", mdb.Identifier},
		{"company id", mdb.Identifier},
		{"fiscal code", mdb.Identifier},
		{"ssn", mdb.Identifier},
		{"vat number", mdb.Identifier},
		{"geographic area", mdb.QuasiIdentifier},
		{"region", mdb.QuasiIdentifier},
		{"city", mdb.QuasiIdentifier},
		{"product sector", mdb.QuasiIdentifier},
		{"employees", mdb.QuasiIdentifier},
		{"residential revenue", mdb.QuasiIdentifier},
		{"occupation", mdb.QuasiIdentifier},
		{"age class", mdb.QuasiIdentifier},
		{"legal form", mdb.QuasiIdentifier},
		{"founded era", mdb.QuasiIdentifier},
		{"export to DE", mdb.QuasiIdentifier},
		{"growth 6 mos", mdb.QuasiIdentifier},
		{"export revenue", mdb.NonIdentifying},
		{"notes", mdb.NonIdentifying},
		{"internal system id", mdb.NonIdentifying},
		{"weight", mdb.Weight},
		{"sampling weight", mdb.Weight},
	}
}
