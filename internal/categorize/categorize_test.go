package categorize

import (
	"strings"
	"testing"

	"vadasa/internal/mdb"
	"vadasa/internal/synth"
)

func defaultCategorizer() *Categorizer {
	return &Categorizer{
		Experience: DefaultExperience(),
		Sims: []Similarity{
			Exact{}, Normalized{}, TokenOverlap{Min: 0.5},
		},
		Consolidate: true,
	}
}

// Figure 4: the I&G attributes are categorized from the experience base.
func TestCategorizeFigure4(t *testing.T) {
	attrs := []string{
		"Id", "Area", "Sector", "Employees", "ResidentialRevenue",
		"ExportRevenue", "ExportToDE", "Growth6mos", "Weight",
	}
	res := defaultCategorizer().Categorize(attrs)
	want := map[string]mdb.Category{
		"Id":                 mdb.Identifier,
		"Area":               mdb.QuasiIdentifier,
		"Sector":             mdb.QuasiIdentifier,
		"Employees":          mdb.QuasiIdentifier,
		"ResidentialRevenue": mdb.QuasiIdentifier,
		"ExportRevenue":      mdb.NonIdentifying,
		"ExportToDE":         mdb.QuasiIdentifier,
		"Growth6mos":         mdb.QuasiIdentifier,
		"Weight":             mdb.Weight,
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
	if len(res.Unknown) != 0 {
		t.Fatalf("unknown: %v", res.Unknown)
	}
	for attr, cat := range want {
		if got := res.Categories[attr]; got != cat {
			t.Errorf("%s categorized as %v, want %v (%s)", attr, got, cat, res.Explanations[attr])
		}
	}
	for attr := range want {
		if res.Explanations[attr] == "" {
			t.Errorf("%s has no explanation", attr)
		}
	}
}

// Rule 3: consolidation lets later attributes chain on earlier inferences.
func TestConsolidationChains(t *testing.T) {
	c := &Categorizer{
		Experience:  []Entry{{"area", mdb.QuasiIdentifier}},
		Sims:        []Similarity{Normalized{}, EditDistance{Max: 1}},
		Consolidate: true,
	}
	// "Aera" is 2 edits from "area"? No: transposition = 2 edits under
	// plain Levenshtein, so it only matches via the consolidated "Arca"
	// chain... use a clean chain instead: area -> areas -> areass.
	res := c.Categorize([]string{"areass", "areas"})
	if res.Categories["areas"] != mdb.QuasiIdentifier {
		t.Fatalf("areas not categorized: %+v", res)
	}
	if res.Categories["areass"] != mdb.QuasiIdentifier {
		t.Fatalf("chain inference failed: %+v", res)
	}

	// Without consolidation the chain is broken.
	c.Consolidate = false
	res = c.Categorize([]string{"areass", "areas"})
	if _, ok := res.Categories["areass"]; ok {
		t.Fatal("chain inference without consolidation")
	}
	if len(res.Unknown) != 1 || res.Unknown[0] != "areass" {
		t.Fatalf("unknown = %v", res.Unknown)
	}
}

// Rule 4 (EGD): conflicting inheritances are reported, not resolved.
func TestConflictDetection(t *testing.T) {
	c := &Categorizer{
		Experience: []Entry{
			{"customer code", mdb.Identifier},
			{"branch code", mdb.QuasiIdentifier},
		},
		Sims: []Similarity{TokenOverlap{Min: 0.4}},
	}
	res := c.Categorize([]string{"code"})
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	conf := res.Conflicts[0]
	if conf.Attr != "code" || len(conf.Candidates) != 2 {
		t.Fatalf("conflict = %+v", conf)
	}
	if _, ok := res.Categories["code"]; ok {
		t.Fatal("conflicted attribute was categorized anyway")
	}
	if !strings.Contains(conf.String(), "code") {
		t.Errorf("Conflict.String() = %q", conf.String())
	}
}

func TestUnknownAttributes(t *testing.T) {
	res := defaultCategorizer().Categorize([]string{"FluxCapacitance"})
	if len(res.Unknown) != 1 || res.Unknown[0] != "FluxCapacitance" {
		t.Fatalf("unknown = %v", res.Unknown)
	}
}

func TestApplyToDictionary(t *testing.T) {
	d := synth.InflationGrowth()
	// Start from a dictionary with every category wrong.
	blank := make([]mdb.Attribute, len(d.Attrs))
	var names []string
	for i, a := range d.Attrs {
		blank[i] = mdb.Attribute{Name: a.Name, Category: mdb.NonIdentifying}
		names = append(names, a.Name)
	}
	dict := mdb.NewDictionary()
	if err := dict.Register("I&G", blank); err != nil {
		t.Fatal(err)
	}
	res := defaultCategorizer().Categorize(names)
	if err := res.Apply(dict, "I&G"); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if cat, _ := dict.Category("I&G", "Area"); cat != mdb.QuasiIdentifier {
		t.Errorf("dictionary category for Area = %v", cat)
	}
	if cat, _ := dict.Category("I&G", "Weight"); cat != mdb.Weight {
		t.Errorf("dictionary category for Weight = %v", cat)
	}
	if err := res.Apply(dict, "unknown-db"); err == nil {
		t.Error("Apply to unknown DB succeeded")
	}
}

func TestCategorizeDefaultsToExact(t *testing.T) {
	c := &Categorizer{Experience: []Entry{{"Area", mdb.QuasiIdentifier}}}
	res := c.Categorize([]string{"Area", "area"})
	if res.Categories["Area"] != mdb.QuasiIdentifier {
		t.Fatal("exact match failed")
	}
	if len(res.Unknown) != 1 {
		t.Fatalf("unknown = %v (exact-only should miss lowercase)", res.Unknown)
	}
}

func TestExactAndNormalized(t *testing.T) {
	if !(Exact{}).Similar("Area", "Area") || (Exact{}).Similar("Area", "area") {
		t.Error("Exact misbehaves")
	}
	n := Normalized{}
	if !n.Similar("Sampling Weight", "sampling_weight") {
		t.Error("Normalized misses punctuation variants")
	}
	if n.Similar("Weight", "Height") {
		t.Error("Normalized over-matches")
	}
}

func TestEditDistance(t *testing.T) {
	e := EditDistance{Max: 1}
	if !e.Similar("Employees", "Employes") {
		t.Error("one deletion not matched")
	}
	if e.Similar("Employees", "Emp") {
		t.Error("distance 6 matched")
	}
	if !e.Similar("", "a") || (EditDistance{Max: 0}).Similar("", "a") {
		t.Error("empty-string edge cases")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "ab", 2},
		{"kitten", "sitting", 3}, {"area", "aera", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTokens(t *testing.T) {
	cases := map[string][]string{
		"ExportToDE":         {"export", "to", "de"},
		"Growth6mos":         {"growth", "6", "mos"},
		"residential_rev":    {"residential", "rev"},
		"ResidentialRevenue": {"residential", "revenue"},
		"":                   nil,
	}
	for in, want := range cases {
		got := Tokens(in)
		if len(got) != len(want) {
			t.Errorf("Tokens(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Tokens(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
}

func TestTokenOverlap(t *testing.T) {
	s := TokenOverlap{Min: 0.5}
	if !s.Similar("Area", "geographic area") {
		t.Error("Area ~ geographic area failed")
	}
	if s.Similar("ResidentialRevenue", "export revenue") {
		t.Error("1/3 overlap matched at 0.5")
	}
	if s.Similar("", "x") {
		t.Error("empty name matched")
	}
}

func TestSynonyms(t *testing.T) {
	s := Synonyms{Pairs: map[string][]string{
		"fiscal code": {"tax id", "codice fiscale"},
	}}
	if !s.Similar("Fiscal Code", "Tax ID") {
		t.Error("synonym lookup failed")
	}
	if !s.Similar("codice_fiscale", "fiscal code") {
		t.Error("reverse synonym lookup failed")
	}
	if s.Similar("fiscal code", "weight") {
		t.Error("non-synonym matched")
	}
}

func TestAbbreviation(t *testing.T) {
	a := Abbreviation{}
	cases := []struct {
		x, y string
		want bool
	}{
		{"Res. Rev.", "Residential Revenue", true},
		{"Residential Revenue", "Res. Rev.", true},
		{"Exp. Rev.", "Export Revenue", true},
		{"Grwth", "Growth", true},
		{"Res. Rev.", "Export Revenue", false}, // "res" not a prefix of "export"
		{"Area", "Area", false},                // identity is Exact's job
		{"", "x", false},
		{"Residential", "Residential Revenue", false}, // token counts differ
	}
	for _, c := range cases {
		if got := a.Similar(c.x, c.y); got != c.want {
			t.Errorf("Abbreviation(%q, %q) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// The Figure 1 header abbreviations categorize correctly once Abbreviation
// is plugged in.
func TestCategorizeAbbreviatedHeaders(t *testing.T) {
	c := &Categorizer{
		Experience: DefaultExperience(),
		Sims: []Similarity{
			Exact{}, Normalized{}, TokenOverlap{Min: 0.5}, Abbreviation{},
		},
		Consolidate: true,
	}
	res := c.Categorize([]string{"Res. Rev.", "Exp. Rev."})
	if res.Categories["Res. Rev."] != mdb.QuasiIdentifier {
		t.Errorf("Res. Rev. = %v (%s)", res.Categories["Res. Rev."], res.Explanations["Res. Rev."])
	}
	if res.Categories["Exp. Rev."] != mdb.NonIdentifying {
		t.Errorf("Exp. Rev. = %v (%s)", res.Categories["Exp. Rev."], res.Explanations["Exp. Rev."])
	}
}
