// Package categorize implements the attribute-categorization reasoning of
// Algorithm 1: attributes of a new microdata DB inherit the category
// (identifier, quasi-identifier, non-identifying, weight) of sufficiently
// similar attributes in an experience base, recursively feeding confirmed
// decisions back so later attributes can chain on earlier ones. Conflicting
// inheritances — the EGD of Rule 4 — are surfaced for human inspection
// instead of being silently resolved.
package categorize

import (
	"strings"
	"unicode"
)

// Similarity is the pluggable ∼ relation of Algorithm 1, Rule 2.
type Similarity interface {
	Name() string
	Similar(a, b string) bool
}

// Exact matches identical names.
type Exact struct{}

// Name implements Similarity.
func (Exact) Name() string { return "exact" }

// Similar implements Similarity.
func (Exact) Similar(a, b string) bool { return a == b }

// Normalized matches names that are equal after lower-casing and dropping
// spaces, underscores and punctuation: "Sampling Weight" ~ "sampling_weight".
type Normalized struct{}

// Name implements Similarity.
func (Normalized) Name() string { return "normalized" }

// Similar implements Similarity.
func (Normalized) Similar(a, b string) bool { return normalize(a) == normalize(b) }

func normalize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}

// EditDistance matches names whose normalized forms are within Max
// Levenshtein edits: "Employes" ~ "Employees".
type EditDistance struct {
	Max int
}

// Name implements Similarity.
func (EditDistance) Name() string { return "edit-distance" }

// Similar implements Similarity.
func (e EditDistance) Similar(a, b string) bool {
	return levenshtein(normalize(a), normalize(b)) <= e.Max
}

func levenshtein(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// TokenOverlap matches names whose token sets have a Jaccard similarity of
// at least Min. Tokens are split on case changes, digits and punctuation, so
// "ExportToDE" ~ "export to de".
type TokenOverlap struct {
	Min float64
}

// Name implements Similarity.
func (TokenOverlap) Name() string { return "token-overlap" }

// Similar implements Similarity.
func (t TokenOverlap) Similar(a, b string) bool {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return false
	}
	sa := make(map[string]bool, len(ta))
	for _, tok := range ta {
		sa[tok] = true
	}
	inter, union := 0, len(sa)
	seen := make(map[string]bool, len(tb))
	for _, tok := range tb {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		if sa[tok] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter)/float64(union) >= t.Min
}

// Tokens splits an attribute name into lower-case tokens at case changes,
// digit boundaries and non-alphanumeric characters.
func Tokens(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r):
			if i > 0 && unicode.IsUpper(r) && unicode.IsLower(runes[i-1]) {
				flush()
			}
			if i > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			if i > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Abbreviation matches names whose tokens abbreviate one another in order:
// every token of the shorter name must be an abbreviation — a subsequence
// anchored at the first letter — of the corresponding token of the longer
// one, so "Res. Rev." ~ "Residential Revenue" and "Grwth" ~ "Growth", the
// survey-header style of the paper's Figure 1.
type Abbreviation struct{}

// Name implements Similarity.
func (Abbreviation) Name() string { return "abbreviation" }

// Similar implements Similarity.
func (Abbreviation) Similar(a, b string) bool {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 || len(ta) != len(tb) {
		return false
	}
	matched := false
	for i := range ta {
		x, y := ta[i], tb[i]
		if len(x) > len(y) {
			x, y = y, x
		}
		if !abbreviates(x, y) {
			return false
		}
		if len(x) < len(y) {
			matched = true
		}
	}
	// Identical names are Exact's business; require a real abbreviation.
	return matched
}

// abbreviates reports whether short is a subsequence of long sharing its
// first letter.
func abbreviates(short, long string) bool {
	if len(short) == 0 || len(short) > len(long) || short[0] != long[0] {
		return len(short) == 0 && len(long) == 0
	}
	j := 0
	for i := 0; i < len(long) && j < len(short); i++ {
		if long[i] == short[j] {
			j++
		}
	}
	return j == len(short)
}

// Synonyms matches names declared equivalent in a table (symmetric,
// normalized): domain experts record that "fiscal code" means "tax id".
type Synonyms struct {
	Pairs map[string][]string
}

// Name implements Similarity.
func (Synonyms) Name() string { return "synonyms" }

// Similar implements Similarity.
func (s Synonyms) Similar(a, b string) bool {
	na, nb := normalize(a), normalize(b)
	check := func(x, y string) bool {
		for k, vs := range s.Pairs {
			if normalize(k) != x {
				continue
			}
			for _, v := range vs {
				if normalize(v) == y {
					return true
				}
			}
		}
		return false
	}
	return check(na, nb) || check(nb, na)
}
