// Package faultfs abstracts the filesystem operations the durability
// layer (internal/journal, internal/jobs) performs, so tests can
// inject deterministic faults — ENOSPC after N bytes, EIO on the Kth
// fsync, torn writes — and pin the degraded-mode behaviour of the
// pipeline instead of hoping for it. Production code passes OS, a thin
// passthrough to package os.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"vadasa/internal/govern"
)

// File is the subset of *os.File the durability layer uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem surface accepted by journal writers and the job
// manager. Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens with the given flags, like os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens for reading, like os.Open.
	Open(name string) (File, error)
	// ReadFile reads a whole file, like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Remove deletes a file, like os.Remove.
	Remove(name string) error
	// MkdirAll creates a directory tree, like os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// Glob matches files, like filepath.Glob.
	Glob(pattern string) ([]string, error)
	// Free reports the free bytes available on the filesystem holding
	// dir, for disk-headroom checks. Implementations that cannot
	// measure return a negative value and no error; callers skip the
	// check.
	Free(dir string) (int64, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }

func (osFS) Free(dir string) (int64, error) {
	n, err := govern.DiskFree(dir)
	if err != nil {
		return -1, nil // unmeasurable platform: skip headroom checks
	}
	return n, nil
}
