package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func create(t *testing.T, fsys FS, name string) File {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return f
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	f := create(t, OS, name)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	b, err := OS.ReadFile(name)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	free, err := OS.Free(dir)
	if err != nil {
		t.Fatalf("free: %v", err)
	}
	if free == 0 {
		t.Fatal("Free reported an exactly full disk on a writable tempdir")
	}
	matches, err := OS.Glob(filepath.Join(dir, "*.txt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob = %v, %v", matches, err)
	}
}

// ENOSPC lands after exactly N bytes; the straddling write persists
// its allowed prefix (a torn record) and Unlimit reopens the volume.
func TestWriteLimitENOSPC(t *testing.T) {
	dir := t.TempDir()
	faulty := NewFaulty(OS)
	name := filepath.Join(dir, "j")
	f := create(t, faulty, name)
	defer f.Close()

	faulty.LimitWrites(10)
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("write within limit: %v", err)
	}
	_, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("straddling write err = %v, want ENOSPC", err)
	}
	if b, _ := os.ReadFile(name); string(b) != "12345678ab" {
		t.Fatalf("on-disk bytes %q, want torn prefix %q", b, "12345678ab")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-limit write err = %v, want ENOSPC", err)
	}
	faulty.Unlimit()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after Unlimit: %v", err)
	}
}

func TestFailSyncEIO(t *testing.T) {
	dir := t.TempDir()
	faulty := NewFaulty(OS)
	f := create(t, faulty, filepath.Join(dir, "j"))
	defer f.Close()

	faulty.FailSync(2)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 2 err = %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
}

func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	faulty := NewFaulty(OS)
	name := filepath.Join(dir, "j")
	f := create(t, faulty, name)
	defer f.Close()

	faulty.TearWrite(2)
	if _, err := f.Write([]byte("first\n")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	_, err := f.Write([]byte("toolongtosurvive"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write err = %v, want EIO", err)
	}
	b, _ := os.ReadFile(name)
	if string(b) != "first\ntoolongt" {
		t.Fatalf("on-disk bytes %q, want half of the second write", b)
	}
}

func TestSetFree(t *testing.T) {
	dir := t.TempDir()
	faulty := NewFaulty(OS)
	faulty.SetFree(123)
	if n, err := faulty.Free(dir); err != nil || n != 123 {
		t.Fatalf("pinned free = %d, %v", n, err)
	}
	faulty.SetFree(-1)
	if n, err := faulty.Free(dir); err != nil || n <= 0 {
		t.Fatalf("delegated free = %d, %v", n, err)
	}
}
