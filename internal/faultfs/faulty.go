package faultfs

import (
	"fmt"
	"io/fs"
	"sync"
	"syscall"
)

// Faulty wraps a base FS and injects deterministic failures. The zero
// plan injects nothing; arm faults with the setters, which may be
// called concurrently with filesystem use (the ENOSPC window of a
// disk-pressure test opens and closes while a job is writing).
//
// Faults are counted across all files opened through the Faulty, so a
// test controls exactly which write or fsync in a whole run fails.
type Faulty struct {
	base FS

	mu         sync.Mutex
	writeLeft  int64 // bytes that may still be written; -1 = unlimited
	free       int64 // what Free reports; -1 = delegate to base
	syncs      int   // fsyncs observed so far
	failSyncAt int   // inject EIO on this (1-based) fsync; 0 = never
	writes     int   // writes observed so far
	tearAt     int   // tear this (1-based) write: half the bytes land, then EIO
}

// NewFaulty wraps base with an initially fault-free plan.
func NewFaulty(base FS) *Faulty {
	return &Faulty{base: base, writeLeft: -1, free: -1}
}

// LimitWrites arms an ENOSPC fault: across all files, after n more
// bytes are written, further writes fail with ENOSPC (a write
// straddling the limit lands its allowed prefix — a torn record).
func (f *Faulty) LimitWrites(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeLeft = n
}

// Unlimit lifts a write limit: space has been freed.
func (f *Faulty) Unlimit() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeLeft = -1
}

// SetFree pins the value Free reports (the disk-headroom signal);
// negative delegates to the base filesystem.
func (f *Faulty) SetFree(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.free = n
}

// FailSync arms an EIO fault on the kth fsync from now (1-based).
func (f *Faulty) FailSync(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs, f.failSyncAt = 0, k
}

// TearWrite arms a torn write: the kth write from now (1-based)
// persists only the first half of its buffer and reports EIO, the
// shape a crash mid-write leaves on disk.
func (f *Faulty) TearWrite(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes, f.tearAt = 0, k
}

func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	base, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: base, fs: f}, nil
}

func (f *Faulty) Open(name string) (File, error) { return f.base.Open(name) }

func (f *Faulty) ReadFile(name string) ([]byte, error)         { return f.base.ReadFile(name) }
func (f *Faulty) Remove(name string) error                     { return f.base.Remove(name) }
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error { return f.base.MkdirAll(path, perm) }
func (f *Faulty) Glob(pattern string) ([]string, error)        { return f.base.Glob(pattern) }

func (f *Faulty) Free(dir string) (int64, error) {
	f.mu.Lock()
	pinned := f.free
	f.mu.Unlock()
	if pinned >= 0 {
		return pinned, nil
	}
	return f.base.Free(dir)
}

// plan decides the fate of an n-byte write: how many bytes the base
// filesystem receives and the error to report afterwards.
func (f *Faulty) planWrite(n int) (allow int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.tearAt > 0 && f.writes == f.tearAt {
		return n / 2, fmt.Errorf("faultfs: torn write: %w", syscall.EIO)
	}
	if f.writeLeft < 0 {
		return n, nil
	}
	if int64(n) <= f.writeLeft {
		f.writeLeft -= int64(n)
		return n, nil
	}
	allow = int(f.writeLeft)
	f.writeLeft = 0
	return allow, fmt.Errorf("faultfs: write limit: %w", syscall.ENOSPC)
}

func (f *Faulty) planSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncAt > 0 && f.syncs == f.failSyncAt {
		return fmt.Errorf("faultfs: fsync %d: %w", f.syncs, syscall.EIO)
	}
	return nil
}

type faultyFile struct {
	File
	fs *Faulty
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	allow, planned := ff.fs.planWrite(len(p))
	n, err := ff.File.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if planned != nil {
		return n, planned
	}
	return n, nil
}

func (ff *faultyFile) Sync() error {
	if err := ff.fs.planSync(); err != nil {
		return err
	}
	return ff.File.Sync()
}
