package vadasa

import (
	"context"

	"vadasa/internal/datalog"
)

// Reasoning surface: the warded-Datalog±-style engine Vada-SA builds on.
// Business experts encode risk measures, anonymization criteria and
// surrounding business knowledge as declarative programs; the engine
// evaluates them with chase-based semantics (labelled-null invention for
// existential heads, stratified negation, monotonic aggregations with
// contributor semantics, EGDs) and full provenance.
type (
	// Program is a parsed reasoning program.
	Program = datalog.Program
	// FactDB is an extensional database of ground facts.
	FactDB = datalog.Database
	// ReasoningResult is a derived database with provenance and EGD
	// violations.
	ReasoningResult = datalog.Result
	// Fact is a tuple of runtime values.
	Fact = datalog.Tuple
	// Val is a runtime value: string, number, labelled null, or set.
	Val = datalog.Val
	// ReasoningOptions bounds a run (fact and round caps).
	ReasoningOptions = datalog.Options
	// ReasoningStats describes the work one evaluation performed: fixpoint
	// rounds, derived facts, match attempts against the work budget, peak
	// governed bytes, and the parallelism the run used. Every
	// ReasoningResult carries one as its Stats field.
	ReasoningStats = datalog.EvalStats
)

// ParseProgram parses a reasoning program in the Vadalog-flavoured syntax:
//
//	own("a","b",0.6).
//	rel(X,Y) :- own(X,Y,W), W > 0.5.
//	rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
func ParseProgram(src string) (*Program, error) { return datalog.Parse(src) }

// MustParseProgram is ParseProgram for programs embedded in source code —
// the regexp.MustCompile idiom. It panics on syntax errors and must never be
// fed user input; servers and pipelines parse untrusted program text with
// ParseProgram, whose error return cannot take a daemon down.
func MustParseProgram(src string) *Program {
	p, err := datalog.Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// NewFactDB returns an empty extensional database.
func NewFactDB() *FactDB { return datalog.NewDatabase() }

// Reason evaluates a program over the extensional database (which is not
// modified) and returns the derived database. A nil opts selects the
// defaults.
func Reason(p *Program, edb *FactDB, opts *ReasoningOptions) (*ReasoningResult, error) {
	return datalog.Run(p, edb, opts)
}

// ReasonContext is Reason honouring ctx: the engine polls the context at
// fixpoint-round boundaries and every few thousand fact-match attempts, so
// a deadline or cancellation stops a runaway chase promptly. The returned
// error wraps ctx.Err() for errors.Is.
func ReasonContext(ctx context.Context, p *Program, edb *FactDB, opts *ReasoningOptions) (*ReasoningResult, error) {
	return datalog.RunContext(ctx, p, edb, opts)
}

// CheckWarded validates the wardedness restriction that guarantees
// PTIME-decidable reasoning; the framework's built-in programs pass it.
func CheckWarded(p *Program) error { return datalog.CheckWarded(p) }

// ValidateProgram is the engine's structural pre-flight: per-predicate arity
// consistency, stratifiability, and wardedness — the checks whose failure
// makes evaluation wrong or divergent, not merely suspicious. It is opt-in:
// Reason does not call it. For full position-tagged diagnostics (including
// warnings), use the internal/datalog/lint analyzer or the vadalint CLI.
func ValidateProgram(p *Program) error { return datalog.Validate(p) }

// StrVal returns a string value.
func StrVal(s string) Val { return datalog.Str(s) }

// NumVal returns a numeric value.
func NumVal(n float64) Val { return datalog.Num(n) }

// QueryBinding is one solution of a query pattern over a reasoning result.
type QueryBinding = datalog.Binding

// QueryTerm is a pattern term: a variable (Var) or constant (Const).
type QueryTerm = datalog.Term

// Var returns a query-pattern variable.
func Var(name string) QueryTerm { return datalog.V(name) }

// Bound returns a query-pattern constant.
func Bound(v Val) QueryTerm { return datalog.C(v) }
