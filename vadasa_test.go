package vadasa

import (
	"bytes"
	"strings"
	"testing"
)

// The full Vada-SA session: register (categorize), assess, anonymize,
// explain, validate against the attack model.
func TestEndToEndSession(t *testing.T) {
	f := New()
	d := InflationGrowth()
	// Wipe the declared categories: Register must recover them.
	for i := range d.Attrs {
		d.Attrs[i].Category = NonIdentifying
	}
	report, err := f.Register(d)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if len(report.Conflicts) != 0 || len(report.Unknown) != 0 {
		t.Fatalf("categorization: conflicts %v, unknown %v", report.Conflicts, report.Unknown)
	}
	if d.AttrIndex("Id") < 0 || d.Attrs[d.AttrIndex("Id")].Category != Identifier {
		t.Fatal("Id not categorized as identifier")
	}
	if d.Attrs[d.AttrIndex("Weight")].Category != Weight {
		t.Fatal("Weight not categorized")
	}
	if got := len(d.QuasiIdentifiers()); got == 0 {
		t.Fatal("no quasi-identifiers recovered")
	}

	// The oracle must be built before anonymization.
	oracle, truth, err := BuildOracle(d, 1000)
	if err != nil {
		t.Fatalf("BuildOracle: %v", err)
	}
	before, err := oracle.Run(d, truth, 1)
	if err != nil {
		t.Fatal(err)
	}

	risks, err := f.AssessRisk(d, KAnonymity{K: 2})
	if err != nil {
		t.Fatalf("AssessRisk: %v", err)
	}
	if len(risks) != len(d.Rows) {
		t.Fatalf("risks = %d values", len(risks))
	}

	res, err := f.Anonymize(d, CycleOptions{Measure: KAnonymity{K: 2}, Threshold: 0.5})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	for _, dec := range res.Decisions {
		if !strings.Contains(dec.String(), "local-suppression") {
			t.Fatalf("unexpected decision: %v", dec)
		}
	}
	after, err := oracle.Run(res.Dataset, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after.ExpectedSuccesses >= before.ExpectedSuccesses {
		t.Fatalf("attack not weakened: %g -> %g", before.ExpectedSuccesses, after.ExpectedSuccesses)
	}
}

func TestFrameworkMeasureRegistry(t *testing.T) {
	f := New()
	names := f.MeasureNames()
	want := []string{"individual-risk", "k-anonymity", "re-identification", "suda"}
	if len(names) != len(want) {
		t.Fatalf("measures = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("measures = %v, want %v", names, want)
		}
	}
	m, err := f.Measure("k-anonymity")
	if err != nil || m.Name() == "" {
		t.Fatalf("Measure: %v, %v", m, err)
	}
	if _, err := f.Measure("nope"); err == nil {
		t.Fatal("unknown measure accepted")
	}
	f.RegisterMeasure("custom", func() RiskMeasure { return KAnonymity{K: 7} })
	if m, _ := f.Measure("custom"); m.(KAnonymity).K != 7 {
		t.Fatal("custom measure not registered")
	}
}

func TestFrameworkClusterPropagation(t *testing.T) {
	f := New()
	d := InflationGrowth()
	// Link two companies: tuple 15 is unique under 2-anonymity, so its
	// cluster partner tuple 1 must inherit risk 1.
	id15 := d.Rows[14].Values[0].Constant()
	id1 := d.Rows[0].Values[0].Constant()
	if err := f.Ownership().AddOwnership(id15, id1, 0.8); err != nil {
		t.Fatal(err)
	}
	risks, err := f.AssessRisk(d, KAnonymity{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if risks[0] != 1 || risks[14] != 1 {
		t.Fatalf("cluster risks = %g/%g, want 1/1", risks[0], risks[14])
	}
}

func TestFrameworkAnonymizeWithRecoding(t *testing.T) {
	f := New()
	d := Generate(GeneratorConfig{Tuples: 600, QIs: 4, Dist: DistV, Seed: 2})
	res, err := f.Anonymize(d, CycleOptions{
		Measure:     KAnonymity{K: 2},
		Threshold:   0.5,
		UseRecoding: true,
	})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	recoded := false
	for _, dec := range res.Decisions {
		if dec.Method == "global-recoding" {
			recoded = true
			break
		}
	}
	if !recoded {
		t.Fatal("recoding never used despite UseRecoding (Area values are cities)")
	}
	if len(res.Residual) != 0 {
		t.Fatalf("residual: %v", res.Residual)
	}
}

func TestFrameworkAnonymizeValidates(t *testing.T) {
	f := New()
	d := Figure5like(t)
	if _, err := f.Anonymize(d, CycleOptions{Threshold: 0.5}); err == nil {
		t.Fatal("missing measure accepted")
	}
}

// Figure5like builds a tiny dataset through the public API only.
func Figure5like(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset("tiny", []Attribute{
		{Name: "Area", Category: QuasiIdentifier},
		{Name: "Sector", Category: QuasiIdentifier},
	})
	for _, r := range [][2]string{{"Roma", "Textiles"}, {"Roma", "Commerce"}, {"Roma", "Commerce"}} {
		d.Append(&Row{Values: []Value{Const(r[0]), Const(r[1])}, Weight: 1})
	}
	return d
}

func TestFrameworkRegisterRejectsDuplicates(t *testing.T) {
	f := New()
	d := InflationGrowth()
	if _, err := f.Register(d); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Register(d); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestFrameworkUnknownAttributesLeftAlone(t *testing.T) {
	f := New()
	d := NewDataset("odd", []Attribute{
		{Name: "ZorbFactor", Category: QuasiIdentifier}, // declared by hand
		{Name: "Weight", Category: Weight},
	})
	d.Append(&Row{Values: []Value{Const("x"), Const("1")}, Weight: 1})
	report, err := f.Register(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Unknown) != 1 || report.Unknown[0] != "ZorbFactor" {
		t.Fatalf("unknown = %v", report.Unknown)
	}
	// The hand-declared category must survive.
	if d.Attrs[0].Category != QuasiIdentifier {
		t.Fatal("declared category overwritten")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	d := InflationGrowth()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, d.Name, d.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(d.Rows) {
		t.Fatalf("rows = %d", len(back.Rows))
	}
}

func TestGenerateByNamePublic(t *testing.T) {
	d, err := GenerateByName("R6A4U")
	if err != nil || len(d.Rows) != 6000 {
		t.Fatalf("GenerateByName: %v, %d rows", err, len(d.Rows))
	}
	if _, err := GenerateByName("bogus"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestHierarchyExtension(t *testing.T) {
	f := New()
	h := f.Hierarchy()
	h.AddInstance("Bolzano", "City")
	if err := h.AddIsA("Bolzano", "North"); err != nil {
		t.Fatal(err)
	}
	if got, ok := h.RollUp("Area", "Bolzano"); !ok || got != "North" {
		t.Fatalf("RollUp(Bolzano) = %q, %v", got, ok)
	}
}

func TestExplainRisk(t *testing.T) {
	f := New()
	d := InflationGrowth()
	// Tuple 4 is the unique North/Textiles/1000+ company.
	for _, m := range []RiskMeasure{
		ReIdentification{}, KAnonymity{K: 2},
		IndividualRisk{Estimator: RatioEstimator},
	} {
		ex, err := f.ExplainRisk(d, m, 4)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !strings.Contains(ex, "riskout(4,") {
			t.Errorf("%s explanation missing riskout fact:\n%s", m.Name(), ex)
		}
		if !strings.Contains(ex, "[extensional]") {
			t.Errorf("%s explanation not grounded in extensional facts", m.Name())
		}
	}
}

func TestExplainRiskSUDA(t *testing.T) {
	f := New()
	d := InflationGrowth()
	// Restrict via a copy with only the four example attributes as QIs so
	// the Section 4.2 example (tuple 20, MSUs {Sector} and
	// {Employees, ResidentialRevenue}) is reproduced.
	c := d.Clone()
	keep := map[string]bool{"Area": true, "Sector": true, "Employees": true, "ResidentialRevenue": true}
	for i := range c.Attrs {
		if c.Attrs[i].Category == QuasiIdentifier && !keep[c.Attrs[i].Name] {
			c.Attrs[i].Category = NonIdentifying
		}
	}
	ex, err := f.ExplainRisk(c, SUDA{Threshold: 3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"{Sector}", "{Employees, ResidentialRevenue}", "risk 1"} {
		if !strings.Contains(ex, want) {
			t.Errorf("SUDA explanation missing %q:\n%s", want, ex)
		}
	}
	// A safe tuple gets a safe explanation.
	ex, err = f.ExplainRisk(c, SUDA{Threshold: 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "risk 0") {
		t.Errorf("threshold-1 SUDA explanation should be safe:\n%s", ex)
	}
}

func TestExplainRiskErrors(t *testing.T) {
	f := New()
	d := InflationGrowth()
	if _, err := f.ExplainRisk(d, KAnonymity{K: 2}, 999); err == nil {
		t.Error("unknown tuple id accepted")
	}
	if _, err := f.ExplainRisk(d, KAnonymity{K: 2, Attrs: []string{"Area"}}, 4); err == nil {
		t.Error("attribute-restricted measure accepted")
	}
	if _, err := f.ExplainRisk(d, LDiversity{L: 2, Sensitive: "Growth6mos"}, 4); err == nil {
		t.Error("unsupported measure accepted")
	}
}

func TestLDiversityPublic(t *testing.T) {
	f := New()
	d := InflationGrowth()
	rs, err := f.AssessRisk(d, LDiversity{L: 2, Sensitive: "Growth6mos"})
	if err != nil {
		t.Fatal(err)
	}
	// Every QI combination in Figure 1 is unique, so every group has one
	// sensitive value: all dangerous.
	for i, r := range rs {
		if r != 1 {
			t.Errorf("tuple %d risk = %g, want 1", i+1, r)
		}
	}
}

func TestAssessAllRegistered(t *testing.T) {
	f := New()
	d := InflationGrowth()
	scorecard := f.AssessAllRegistered(d, 0.5)
	if len(scorecard) != 4 {
		t.Fatalf("scorecard has %d entries", len(scorecard))
	}
	byName := map[string]MeasureSummary{}
	for _, ms := range scorecard {
		byName[ms.Name] = ms
		if ms.Err != nil {
			t.Errorf("%s errored: %v", ms.Name, ms.Err)
		}
	}
	// Every Figure 1 combination is unique: k-anonymity flags all 20.
	if got := byName["k-anonymity"].Summary.OverThreshold; got != 20 {
		t.Errorf("k-anonymity over threshold = %d, want 20", got)
	}
	// Re-identification risks are all under 0.5 (weights >= 30).
	if got := byName["re-identification"].Summary.OverThreshold; got != 0 {
		t.Errorf("re-identification over threshold = %d, want 0", got)
	}
	// A failing measure reports its error without breaking the others.
	f.RegisterMeasure("broken", func() RiskMeasure {
		return LDiversity{L: 2, Sensitive: "NoSuchAttr"}
	})
	scorecard = f.AssessAllRegistered(d, 0.5)
	found := false
	for _, ms := range scorecard {
		if ms.Name == "broken" && ms.Err != nil {
			found = true
		}
	}
	if !found {
		t.Error("broken measure's error not surfaced")
	}
}
