module vadasa

go 1.22
