package vadasa

import (
	"bytes"
	"strings"
	"testing"
)

func TestKBRoundTrip(t *testing.T) {
	f := New()
	// Enrich every KB component.
	f.AddExperience(ExperienceEntry{Attr: "branch code", Category: QuasiIdentifier})
	f.Hierarchy().AddInstance("Bolzano", "City")
	if err := f.Hierarchy().AddIsA("Bolzano", "North"); err != nil {
		t.Fatal(err)
	}
	if err := f.Ownership().AddOwnership("A", "B", 0.6); err != nil {
		t.Fatal(err)
	}
	d := InflationGrowth()
	if _, err := f.Register(d); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := f.SaveKB(&buf); err != nil {
		t.Fatalf("SaveKB: %v", err)
	}
	saved := buf.String()
	for _, want := range []string{"branch code", "Bolzano", `"owner": "A"`, `"I&G"`} {
		if !strings.Contains(saved, want) {
			t.Errorf("saved KB missing %q", want)
		}
	}

	g := New()
	if err := g.LoadKB(strings.NewReader(saved)); err != nil {
		t.Fatalf("LoadKB: %v", err)
	}
	if got, ok := g.Hierarchy().RollUp("Area", "Bolzano"); !ok || got != "North" {
		t.Errorf("hierarchy lost: RollUp(Bolzano) = %q, %v", got, ok)
	}
	if g.Ownership().EdgeCount() != 1 {
		t.Errorf("ownership lost: %d edges", g.Ownership().EdgeCount())
	}
	if cat, err := g.Dictionary().Category("I&G", "Area"); err != nil || cat != QuasiIdentifier {
		t.Errorf("dictionary lost: %v, %v", cat, err)
	}
	// The restored experience base must drive categorization as before.
	d2 := NewDataset("branches", []Attribute{{Name: "BranchCode"}})
	d2.Append(&Row{Values: []Value{Const("x")}})
	report, err := g.Register(d2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Categories["BranchCode"] != QuasiIdentifier {
		t.Errorf("restored experience base inactive: %v", report.Categories)
	}

	// Saving the restored framework must reproduce the same document.
	var buf2 bytes.Buffer
	// Unregister-free comparison: register the same extra DB on the
	// original framework so both dictionaries match.
	if _, err := f.Register(d2.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveKB(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := g.SaveKB(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Error("save -> load -> save is not idempotent")
	}
}

func TestLoadKBErrors(t *testing.T) {
	f := New()
	cases := []string{
		`{not json`,
		`{"experience":[{"attr":"x","category":"Bogus"}]}`,
		`{"ownership":[{"owner":"a","owned":"a","share":0.6}]}`,
		`{"hierarchy":{"subTypes":{"A":"A"}}}`,
		`{"dictionary":[{"name":"db","attributes":[{"name":"a","category":"Bogus"}]}]}`,
		`{"dictionary":[{"name":"","attributes":[]}]}`,
	}
	for _, src := range cases {
		if err := f.LoadKB(strings.NewReader(src)); err == nil {
			t.Errorf("LoadKB accepted %q", src)
		}
	}
	// A failed load must not clobber working state... the framework keeps
	// its previous KB because assignment happens after validation.
	if _, err := f.Measure("k-anonymity"); err != nil {
		t.Error("measure registry disturbed by failed loads")
	}
	if _, ok := f.Hierarchy().RollUp("Area", "Milano"); !ok {
		t.Error("hierarchy clobbered by failed load")
	}
}

func TestLoadKBEmptyDocument(t *testing.T) {
	f := New()
	if err := f.LoadKB(strings.NewReader(`{}`)); err != nil {
		t.Fatalf("empty KB rejected: %v", err)
	}
	if f.Ownership().EdgeCount() != 0 {
		t.Error("ownership not cleared")
	}
	if _, ok := f.Hierarchy().RollUp("Area", "Milano"); ok {
		t.Error("hierarchy not cleared")
	}
}
