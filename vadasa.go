// Package vadasa is a reasoning-based framework for financial data exchange
// with statistical confidentiality — a from-scratch Go reproduction of
// Vada-SA (Bellomarini, Blasi, Laurendi, Sallinger: “Financial Data Exchange
// with Statistical Confidentiality: A Reasoning-based Approach”, EDBT 2021).
//
// The framework evaluates the statistical disclosure risk of microdata
// tables and anonymizes them with a statistics-preserving anonymization
// cycle: iteratively estimate per-tuple risk, and remove the minimum amount
// of information (local suppression with labelled nulls, or global recoding
// over domain hierarchies) until every tuple's risk is under a threshold.
//
// A minimal session:
//
//	f := vadasa.New()
//	report, _ := f.Register(dataset)        // categorize attributes
//	risks, _ := f.AssessRisk(dataset, vadasa.KAnonymity{K: 3})
//	res, _ := f.Anonymize(dataset, vadasa.CycleOptions{
//		Measure:   vadasa.KAnonymity{K: 3},
//		Threshold: 0.5,
//	})
//	for _, d := range res.Decisions { fmt.Println(d) } // full explanation
//
// The heavy lifting lives in the internal packages; this package re-exports
// the stable surface: the microdata model (internal/mdb), the risk measures
// of the paper's Section 4.2 (internal/risk), anonymization methods and the
// cycle (internal/anon), business-knowledge risk propagation
// (internal/cluster), domain hierarchies (internal/hierarchy), attribute
// categorization (internal/categorize), the identity-oracle attack simulator
// (internal/attack), and the warded-Datalog± reasoning engine the paper
// builds on (internal/datalog, with the paper's algorithms as runnable
// programs in internal/programs).
package vadasa

import (
	"io"

	"vadasa/internal/anon"
	"vadasa/internal/attack"
	"vadasa/internal/categorize"
	"vadasa/internal/cluster"
	"vadasa/internal/hierarchy"
	"vadasa/internal/mdb"
	"vadasa/internal/programs"
	"vadasa/internal/risk"
	"vadasa/internal/synth"
	"vadasa/internal/utility"
)

// Microdata model (internal/mdb).
type (
	// Dataset is a microdata DB: a named relation with categorized
	// attributes and per-tuple sampling weights.
	Dataset = mdb.Dataset
	// Attribute describes one column and its disclosure category.
	Attribute = mdb.Attribute
	// Row is one microdata tuple.
	Row = mdb.Row
	// Value is a constant or a labelled null ⊥ᵢ.
	Value = mdb.Value
	// Category classifies attributes for disclosure purposes.
	Category = mdb.Category
	// Semantics selects how labelled nulls compare during grouping.
	Semantics = mdb.Semantics
	// Dictionary is the metadata dictionary over registered microdata DBs.
	Dictionary = mdb.Dictionary
)

// Attribute categories (Section 2.1).
const (
	NonIdentifying  = mdb.NonIdentifying
	Identifier      = mdb.Identifier
	QuasiIdentifier = mdb.QuasiIdentifier
	Weight          = mdb.Weight
)

// Labelled-null comparison semantics (Section 4.3).
const (
	// MaybeMatch treats a labelled null as compatible with anything.
	MaybeMatch = mdb.MaybeMatch
	// StandardNulls is the Skolem baseline of Figure 7c.
	StandardNulls = mdb.StandardNulls
)

// Const returns a constant value.
func Const(s string) Value { return mdb.Const(s) }

// NewDataset returns an empty dataset with the given schema.
func NewDataset(name string, attrs []Attribute) *Dataset {
	return mdb.NewDataset(name, attrs)
}

// ReadCSV reads a microdata DB from CSV against a schema.
func ReadCSV(r io.Reader, name string, attrs []Attribute) (*Dataset, error) {
	return mdb.ReadCSV(r, name, attrs)
}

// WriteCSV writes a dataset (labelled nulls in ⊥i form) as CSV.
func WriteCSV(w io.Writer, d *Dataset) error { return mdb.WriteCSV(w, d) }

// Risk measures (Section 4.2).
type (
	// RiskMeasure estimates per-tuple disclosure risk in [0,1].
	RiskMeasure = risk.Assessor
	// ContextRiskMeasure is a RiskMeasure that can be cancelled
	// mid-evaluation: all built-in measures implement it, and custom
	// measures that do are stopped promptly by AssessRiskContext /
	// AnonymizeContext when the request's context is done.
	ContextRiskMeasure = risk.ContextAssessor
	// ReIdentification is Algorithm 3: risk 1/ΣW over the tuple's group.
	ReIdentification = risk.ReIdentification
	// KAnonymity is Algorithm 4: risk 1 when the combination occurs
	// fewer than K times.
	KAnonymity = risk.KAnonymity
	// IndividualRisk is Algorithm 5: the Benedetti–Franconi posterior.
	IndividualRisk = risk.IndividualRisk
	// SUDA is Algorithm 6: minimal-sample-unique detection.
	SUDA = risk.SUDA
	// LDiversity extends k-anonymity against homogeneity attacks: a group
	// is dangerous when it carries fewer than L distinct values of a
	// sensitive attribute.
	LDiversity = risk.LDiversity
	// TCloseness flags groups whose sensitive-attribute distribution
	// drifts more than T (total variation) from the global one.
	TCloseness = risk.TCloseness
)

// Individual-risk estimators.
const (
	RatioEstimator      = risk.Ratio
	PosteriorEstimator  = risk.PosteriorSeries
	MonteCarloEstimator = risk.MonteCarlo
)

// Anonymization (Section 4.3/4.4).
type (
	// Anonymizer applies one minimal anonymization step to a risky tuple.
	Anonymizer = anon.Anonymizer
	// LocalSuppression replaces a quasi-identifier with a labelled null.
	LocalSuppression = anon.LocalSuppression
	// GlobalRecoding rolls values up a domain hierarchy.
	GlobalRecoding = anon.GlobalRecoding
	// Composite chains anonymizers (recode while possible, then suppress).
	Composite = anon.Composite
	// Decision is one explained anonymization step.
	Decision = anon.Decision
	// CycleResult is the outcome of an anonymization cycle.
	CycleResult = anon.Result
	// AttrChoice picks which quasi-identifier to anonymize first.
	AttrChoice = anon.AttrChoice
	// TupleOrder picks which risky tuples to anonymize first.
	TupleOrder = anon.TupleOrder
	// CycleCheckpoint is one committed cycle iteration — the unit a durable
	// job manager journals and later replays through ResumeAnonymizeContext.
	CycleCheckpoint = anon.Checkpoint
	// CheckpointFunc receives each committed iteration; an error aborts the
	// cycle (write-ahead: un-journaled progress must not happen).
	CheckpointFunc = anon.CheckpointFunc
)

// Runtime heuristics (Section 4.4).
const (
	AttrMostSelective  = anon.AttrMostSelective
	AttrLeastSelective = anon.AttrLeastSelective
	AttrSchemaOrder    = anon.AttrSchemaOrder

	OrderLessSignificantFirst = anon.OrderLessSignificantFirst
	OrderByRiskDesc           = anon.OrderByRiskDesc
	OrderByID                 = anon.OrderByID
)

// Business knowledge (Section 4.4).
type (
	// OwnershipGraph holds company-ownership shares; control closure and
	// clusters derive from it.
	OwnershipGraph = cluster.Graph
	// ClusterRisk decorates a base measure with 1−Π(1−ρ) propagation.
	ClusterRisk = cluster.Assessor
	// Hierarchy is the TypeOf/SubTypeOf/InstOf/IsA knowledge base used by
	// global recoding.
	Hierarchy = hierarchy.Hierarchy
)

// NewOwnershipGraph returns an empty ownership graph.
func NewOwnershipGraph() *OwnershipGraph { return cluster.NewGraph() }

// NewHierarchy returns an empty domain hierarchy.
func NewHierarchy() *Hierarchy { return hierarchy.New() }

// ItalianGeography is the city→region→country hierarchy fixture used in the
// paper's recoding examples.
func ItalianGeography() *Hierarchy { return hierarchy.ItalianGeography() }

// Categorization (Section 4.1 / Algorithm 1).
type (
	// ExperienceEntry is one known attribute-name→category pair.
	ExperienceEntry = categorize.Entry
	// Similarity is the pluggable ∼ relation of Algorithm 1.
	Similarity = categorize.Similarity
	// CategorizationResult carries categories, explanations, conflicts
	// and the unknown attributes awaiting expert input.
	CategorizationResult = categorize.Result
)

// Attack simulation (Section 2.2 / Figure 2).
type (
	// IdentityOracle is the external population an attacker cross-links
	// against.
	IdentityOracle = attack.Oracle
	// AttackResult aggregates expected and sampled re-identifications.
	AttackResult = attack.Result
)

// BuildOracle synthesizes an identity oracle (and the true identity of every
// tuple) from an un-anonymized microdata DB; weights set how many population
// lookalikes each tuple has, capped at maxPerRow.
func BuildOracle(d *Dataset, maxPerRow int) (*IdentityOracle, map[int]string, error) {
	return attack.Build(d, maxPerRow)
}

// Synthetic data (Figure 6).
type (
	// GeneratorConfig parameterizes the synthetic dataset generator.
	GeneratorConfig = synth.Config
	// Distribution selects the W/U/V family of Figure 6.
	Distribution = synth.Dist
)

// Distribution families.
const (
	DistW = synth.DistW
	DistU = synth.DistU
	DistV = synth.DistV
)

// Generate builds a synthetic microdata DB in the R<t>A<q><dist> family.
func Generate(cfg GeneratorConfig) *Dataset { return synth.Generate(cfg) }

// GenerateByName regenerates a Figure 6 dataset by its paper name, e.g.
// "R25A4W".
func GenerateByName(name string) (*Dataset, error) { return synth.ByName(name) }

// InflationGrowth returns the 20-tuple Figure 1 fixture.
func InflationGrowth() *Dataset { return synth.InflationGrowth() }

// RiskSummary condenses a per-tuple risk vector into distribution figures —
// the preemptive confidentiality score of desideratum (iii).
type RiskSummary = risk.Summary

// SummarizeRisks computes count/quantile statistics of a risk vector against
// a threshold.
func SummarizeRisks(risks []float64, threshold float64) RiskSummary {
	return risk.Summarize(risks, threshold)
}

// UtilityReport quantifies statistics preservation: per-attribute
// suppression/recoding counts, marginal-distribution drift, and
// aggregation-group growth (desideratum v of the paper).
type UtilityReport = utility.Report

// CompareUtility measures how much statistical value the anonymized dataset
// retains relative to the original it was derived from.
func CompareUtility(before, after *Dataset) (*UtilityReport, error) {
	return utility.Compare(before, after)
}

// HouseholdConfig parameterizes the household-survey generator.
type HouseholdConfig = synth.HouseholdConfig

// GenerateHousehold builds a person-level microdata DB with household
// structure (the "Household income and wealth" survey style of Section 2)
// and returns the member identifiers of each household, for use with
// cluster-risk propagation.
func GenerateHousehold(cfg HouseholdConfig) (*Dataset, map[string][]string) {
	return synth.Household(cfg)
}

// Microaggregate applies univariate microaggregation to a numeric attribute:
// sorted values are partitioned into groups of at least k and replaced by
// their group means, preserving the column total exactly — a third
// statistics-preserving anonymization method next to suppression and
// recoding.
func Microaggregate(d *Dataset, attr string, k int) error {
	return anon.Microaggregate(d, attr, k)
}

// Discretize replaces a numeric attribute's values with interval labels
// over the given cut points and installs the matching generalization ladder
// into the hierarchy, so global recoding can coarsen the attribute further.
func Discretize(d *Dataset, attr string, cuts []float64, kb *Hierarchy) error {
	return anon.Discretize(d, attr, cuts, kb)
}

// VerifyKAnonymity independently checks the released dataset: it returns
// the IDs of tuples whose maybe-match group is smaller than k (empty =
// certified k-anonymous under the given semantics).
func VerifyKAnonymity(d *Dataset, k int, sem Semantics) []int {
	return anon.VerifyKAnonymity(d, k, sem)
}

// DeclarativeCycleResult reports a reasoning-only anonymization run.
type DeclarativeCycleResult = programs.CycleResult

// DeclarativeAnonymize runs the anonymization cycle for k-anonymity with
// local suppression entirely through reasoning passes on the engine
// (Algorithms 2 and 7 as chase steps, with suppression implemented by
// existential rules inventing labelled nulls). The engine's labelled nulls
// follow the standard Skolem semantics — the Figure 7c baseline — so this is
// the didactic, fully declarative twin of Framework.Anonymize, intended for
// small datasets.
func DeclarativeAnonymize(d *Dataset, k, maxIter int) (*DeclarativeCycleResult, error) {
	return programs.DeclarativeCycle(d, k, maxIter)
}

// EstimateWeights fills in sampling weights for a dataset that arrived
// without them: weight = populationScale × maybe-match sample frequency of
// the tuple's quasi-identifier combination (the estimator of Section 2.1).
func EstimateWeights(d *Dataset, populationScale float64) error {
	return risk.EstimateWeights(d, populationScale)
}

// ImpactAnalysis measures how much each quasi-identifier contributes to the
// number of risky tuples: the over-threshold count with the full set versus
// with the attribute ignored, sorted by descending drop.
type ImpactEntry = risk.AttributeImpact

// AttributeImpacts runs the impact analysis with a k-anonymity yardstick.
func AttributeImpacts(d *Dataset, k int, threshold float64) ([]ImpactEntry, error) {
	return risk.ImpactAnalysis(d, func(attrs []string) risk.Assessor {
		return risk.KAnonymity{K: k, Attrs: attrs}
	}, threshold, MaybeMatch)
}
