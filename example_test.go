package vadasa_test

import (
	"fmt"
	"log"

	"vadasa"
)

// Assess the re-identification risk of the paper's Figure 1 microdata: the
// risk of tuple 15 is 1 over its sampling weight of 30 (Section 2.2).
func ExampleFramework_AssessRisk() {
	f := vadasa.New()
	d := vadasa.InflationGrowth()
	risks, err := f.AssessRisk(d, vadasa.ReIdentification{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuple 15: %.4f\n", risks[14])
	fmt.Printf("tuple  7: %.4f\n", risks[6])
	// Output:
	// tuple 15: 0.0333
	// tuple  7: 0.0033
}

// Anonymize until every tuple is 2-anonymous; the decision log explains
// every suppressed value.
func ExampleFramework_Anonymize() {
	f := vadasa.New()
	d := vadasa.InflationGrowth()
	res, err := f.Anonymize(d, vadasa.CycleOptions{
		Measure:   vadasa.KAnonymity{K: 2},
		Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("residual risky tuples:", len(res.Residual))
	fmt.Println("original untouched:", d.NullCount() == 0)
	// Output:
	// residual risky tuples: 0
	// original untouched: true
}

// Domain experts write their own criteria as declarative programs — the
// company-control rules of Section 4.4, evaluated with monotonic
// aggregation.
func ExampleReason() {
	program := vadasa.MustParseProgram(`
		own(alpha, beta, 0.6).
		own(alpha, gamma, 0.3).
		own(beta, gamma, 0.3).
		ctr(X,X) :- own(X,Y,W).
		rel(X,Y) :- ctr(X,Z), own(Z,Y,W), msum(W,[Z]) > 0.5.
		ctr(X,Y) :- rel(X,Y).
	`)
	res, err := vadasa.Reason(program, vadasa.NewFactDB(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Facts("rel") {
		fmt.Printf("%s controls %s\n", f[0].StrVal(), f[1].StrVal())
	}
	// Output:
	// alpha controls beta
	// alpha controls gamma
}

// SUDA explanations list the minimal sample uniques behind a verdict — the
// worked example of Section 4.2 for tuple 20.
func ExampleFramework_ExplainRisk() {
	f := vadasa.New()
	d := vadasa.InflationGrowth()
	// Restrict to the four attributes of the paper's example.
	keep := map[string]bool{"Area": true, "Sector": true, "Employees": true, "ResidentialRevenue": true}
	for i := range d.Attrs {
		if d.Attrs[i].Category == vadasa.QuasiIdentifier && !keep[d.Attrs[i].Name] {
			d.Attrs[i].Category = vadasa.NonIdentifying
		}
	}
	ex, err := f.ExplainRisk(d, vadasa.SUDA{Threshold: 3}, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ex)
	// Output:
	// SUDA on tuple 20 (MSU size threshold 3, combinations up to size 3):
	//   minimal sample unique {Sector}: size 1 — dangerous (size < threshold)
	//   minimal sample unique {Employees, ResidentialRevenue}: size 2 — dangerous (size < threshold)
	//   => risk 1: too few attributes disclose this tuple
}

// The attack simulator validates the risk model: expected re-identification
// success equals the estimated risk.
func ExampleBuildOracle() {
	d := vadasa.InflationGrowth()
	oracle, truth, err := vadasa.BuildOracle(d, 1000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := oracle.Run(d, truth, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected successes over 20 tuples: %.2f\n", res.ExpectedSuccesses)
	// Output:
	// expected successes over 20 tuples: 0.20
}
